// Dense row-major matrix type used throughout atmor.
//
// The library targets circuit-sized problems (n up to a few hundred states,
// with Kronecker-structured operators standing in for the n^2/n^3 lifted
// spaces), so a simple cache-aware row-major implementation is sufficient —
// the design goal is correctness and clarity, not BLAS-level throughput.
#pragma once

#include <algorithm>
#include <complex>
#include <initializer_list>
#include <type_traits>
#include <vector>

#include "la/simd.hpp"
#include "util/check.hpp"

namespace atmor::la {

using Complex = std::complex<double>;

/// Dense row-major matrix over T (double or std::complex<double>).
template <class T>
class DenseMatrix {
public:
    DenseMatrix() = default;

    /// rows x cols matrix, zero-initialised.
    DenseMatrix(int rows, int cols) : rows_(rows), cols_(cols), data_(checked_size(rows, cols)) {}

    /// Build from nested initializer list (row major); rows must be equal length.
    DenseMatrix(std::initializer_list<std::initializer_list<T>> rows) {
        rows_ = static_cast<int>(rows.size());
        cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
        data_.reserve(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_));
        for (const auto& r : rows) {
            ATMOR_REQUIRE(static_cast<int>(r.size()) == cols_, "ragged initializer list");
            data_.insert(data_.end(), r.begin(), r.end());
        }
    }

    static DenseMatrix zeros(int rows, int cols) { return DenseMatrix(rows, cols); }

    static DenseMatrix identity(int n) {
        DenseMatrix m(n, n);
        for (int i = 0; i < n; ++i) m(i, i) = T(1);
        return m;
    }

    [[nodiscard]] int rows() const { return rows_; }
    [[nodiscard]] int cols() const { return cols_; }
    [[nodiscard]] bool empty() const { return data_.empty(); }
    [[nodiscard]] bool square() const { return rows_ == cols_; }

    T& operator()(int i, int j) {
        return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(j)];
    }
    const T& operator()(int i, int j) const {
        return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                     static_cast<std::size_t>(j)];
    }

    /// Bounds-checked access (used by tests and non-hot paths).
    T& at(int i, int j) {
        ATMOR_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                      "index (" << i << "," << j << ") out of " << rows_ << "x" << cols_);
        return (*this)(i, j);
    }
    const T& at(int i, int j) const {
        ATMOR_REQUIRE(i >= 0 && i < rows_ && j >= 0 && j < cols_,
                      "index (" << i << "," << j << ") out of " << rows_ << "x" << cols_);
        return (*this)(i, j);
    }

    T* data() { return data_.data(); }
    const T* data() const { return data_.data(); }

    /// Pointer to the start of row i.
    T* row_ptr(int i) { return data_.data() + static_cast<std::size_t>(i) * cols_; }
    const T* row_ptr(int i) const { return data_.data() + static_cast<std::size_t>(i) * cols_; }

    /// Column j as a vector (strided copy).
    [[nodiscard]] std::vector<T> col(int j) const {
        std::vector<T> out(static_cast<std::size_t>(rows_));
        for (int i = 0; i < rows_; ++i) out[static_cast<std::size_t>(i)] = (*this)(i, j);
        return out;
    }

    /// Row i as a vector (contiguous copy).
    [[nodiscard]] std::vector<T> row(int i) const {
        return std::vector<T>(row_ptr(i), row_ptr(i) + cols_);
    }

    void set_col(int j, const std::vector<T>& v) {
        ATMOR_REQUIRE(static_cast<int>(v.size()) == rows_, "column length mismatch");
        for (int i = 0; i < rows_; ++i) (*this)(i, j) = v[static_cast<std::size_t>(i)];
    }

    DenseMatrix& operator+=(const DenseMatrix& other) {
        require_same_shape(other);
        for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
        return *this;
    }
    DenseMatrix& operator-=(const DenseMatrix& other) {
        require_same_shape(other);
        for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
        return *this;
    }
    DenseMatrix& operator*=(T alpha) {
        for (auto& v : data_) v *= alpha;
        return *this;
    }

    friend DenseMatrix operator+(DenseMatrix a, const DenseMatrix& b) { return a += b; }
    friend DenseMatrix operator-(DenseMatrix a, const DenseMatrix& b) { return a -= b; }
    friend DenseMatrix operator*(DenseMatrix a, T alpha) { return a *= alpha; }
    friend DenseMatrix operator*(T alpha, DenseMatrix a) { return a *= alpha; }

private:
    static std::size_t checked_size(int rows, int cols) {
        ATMOR_REQUIRE(rows >= 0 && cols >= 0, "negative dimension");
        return static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    }
    void require_same_shape(const DenseMatrix& other) const {
        ATMOR_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                      "shape mismatch: " << rows_ << "x" << cols_ << " vs " << other.rows_ << "x"
                                         << other.cols_);
    }

    int rows_ = 0;
    int cols_ = 0;
    std::vector<T> data_;
};

using Matrix = DenseMatrix<double>;
using ZMatrix = DenseMatrix<Complex>;
using Vec = std::vector<double>;
using ZVec = std::vector<Complex>;

// ---------------------------------------------------------------------------
// Matrix products (ikj loop order: streams over rows of B, cache friendly).
// The k-wide row updates and row reductions run on the la/simd kernels:
// elementwise updates (axpy/zaxpy) are bit-identical across kernel tiers,
// row reductions (dot) are reassociated and tolerance-pinned.
// ---------------------------------------------------------------------------

/// ci[0..m) += aik * bk[0..m) on the simd kernel layer.
template <class T>
inline void row_update(T* ci, T aik, const T* bk, int m) {
    if constexpr (std::is_same_v<T, double>)
        simd::axpy(aik, bk, ci, static_cast<std::size_t>(m));
    else
        simd::zaxpy(aik, bk, ci, static_cast<std::size_t>(m));
}

template <class T>
DenseMatrix<T> matmul(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
    ATMOR_REQUIRE(a.cols() == b.rows(), "matmul: inner dimensions " << a.cols() << " vs "
                                                                    << b.rows());
    DenseMatrix<T> c(a.rows(), b.cols());
    const int n = a.rows(), k_dim = a.cols(), m = b.cols();
    for (int i = 0; i < n; ++i) {
        T* ci = c.row_ptr(i);
        for (int k = 0; k < k_dim; ++k) {
            const T aik = a(i, k);
            if (aik == T(0)) continue;
            row_update(ci, aik, b.row_ptr(k), m);
        }
    }
    return c;
}

/// Cache-tiled GEMM for large operands (Galerkin projection's V^T (A V)).
/// Tiles ascend in k, and within each tile k ascends, so every output element
/// accumulates its products in exactly matmul's order -- the two agree bit
/// for bit; the tiling only keeps the active panels of A and B in cache.
template <class T>
DenseMatrix<T> matmul_blocked(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
    ATMOR_REQUIRE(a.cols() == b.rows(), "matmul_blocked: inner dimensions " << a.cols()
                                                                            << " vs " << b.rows());
    constexpr int kTileI = 48;
    constexpr int kTileK = 48;
    DenseMatrix<T> c(a.rows(), b.cols());
    const int n = a.rows(), k_dim = a.cols(), m = b.cols();
    for (int k0 = 0; k0 < k_dim; k0 += kTileK) {
        const int k1 = std::min(k_dim, k0 + kTileK);
        for (int i0 = 0; i0 < n; i0 += kTileI) {
            const int i1 = std::min(n, i0 + kTileI);
            for (int i = i0; i < i1; ++i) {
                T* ci = c.row_ptr(i);
                for (int k = k0; k < k1; ++k) {
                    const T aik = a(i, k);
                    if (aik == T(0)) continue;
                    row_update(ci, aik, b.row_ptr(k), m);
                }
            }
        }
    }
    return c;
}

/// y = A * x.
template <class T>
std::vector<T> matvec(const DenseMatrix<T>& a, const std::vector<T>& x) {
    ATMOR_REQUIRE(a.cols() == static_cast<int>(x.size()), "matvec: dimension mismatch");
    std::vector<T> y(static_cast<std::size_t>(a.rows()), T(0));
    for (int i = 0; i < a.rows(); ++i) {
        const T* ai = a.row_ptr(i);
        if constexpr (std::is_same_v<T, double>) {
            y[static_cast<std::size_t>(i)] =
                simd::dot(ai, x.data(), static_cast<std::size_t>(a.cols()));
        } else {
            T acc = T(0);
            for (int j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
            y[static_cast<std::size_t>(i)] = acc;
        }
    }
    return y;
}

/// y = A^T * x (A^H for complex is `adjoint_matvec`).
template <class T>
std::vector<T> matvec_transposed(const DenseMatrix<T>& a, const std::vector<T>& x) {
    ATMOR_REQUIRE(a.rows() == static_cast<int>(x.size()), "matvec_transposed: dimension mismatch");
    std::vector<T> y(static_cast<std::size_t>(a.cols()), T(0));
    for (int i = 0; i < a.rows(); ++i) {
        const T* ai = a.row_ptr(i);
        const T xi = x[static_cast<std::size_t>(i)];
        if (xi == T(0)) continue;
        row_update(y.data(), xi, ai, a.cols());
    }
    return y;
}

/// y = A x with real A and complex x.
inline ZVec matvec_rc(const Matrix& a, const ZVec& x) {
    ATMOR_REQUIRE(a.cols() == static_cast<int>(x.size()), "matvec_rc: dimension mismatch");
    ZVec y(static_cast<std::size_t>(a.rows()), Complex(0));
    for (int i = 0; i < a.rows(); ++i) {
        const double* ai = a.row_ptr(i);
        Complex acc(0);
        for (int j = 0; j < a.cols(); ++j) acc += ai[j] * x[static_cast<std::size_t>(j)];
        y[static_cast<std::size_t>(i)] = acc;
    }
    return y;
}

template <class T>
DenseMatrix<T> transpose(const DenseMatrix<T>& a) {
    DenseMatrix<T> t(a.cols(), a.rows());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) t(j, i) = a(i, j);
    return t;
}

inline ZMatrix adjoint(const ZMatrix& a) {
    ZMatrix t(a.cols(), a.rows());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) t(j, i) = std::conj(a(i, j));
    return t;
}

inline ZMatrix conjugate(const ZMatrix& a) {
    ZMatrix c(a.rows(), a.cols());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) c(i, j) = std::conj(a(i, j));
    return c;
}

// ---------------------------------------------------------------------------
// Real <-> complex conversions.
// ---------------------------------------------------------------------------

inline ZMatrix complexify(const Matrix& a) {
    ZMatrix z(a.rows(), a.cols());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) z(i, j) = Complex(a(i, j), 0.0);
    return z;
}

inline Matrix real_part(const ZMatrix& z) {
    Matrix a(z.rows(), z.cols());
    for (int i = 0; i < z.rows(); ++i)
        for (int j = 0; j < z.cols(); ++j) a(i, j) = z(i, j).real();
    return a;
}

inline Matrix imag_part(const ZMatrix& z) {
    Matrix a(z.rows(), z.cols());
    for (int i = 0; i < z.rows(); ++i)
        for (int j = 0; j < z.cols(); ++j) a(i, j) = z(i, j).imag();
    return a;
}

inline ZVec complexify(const Vec& v) {
    ZVec z(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) z[i] = Complex(v[i], 0.0);
    return z;
}

inline Vec real_part(const ZVec& z) {
    Vec v(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) v[i] = z[i].real();
    return v;
}

inline Vec imag_part(const ZVec& z) {
    Vec v(z.size());
    for (std::size_t i = 0; i < z.size(); ++i) v[i] = z[i].imag();
    return v;
}

// ---------------------------------------------------------------------------
// Norms.
// ---------------------------------------------------------------------------

template <class T>
double frobenius_norm(const DenseMatrix<T>& a) {
    double s = 0.0;
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) s += std::norm(Complex(a(i, j)));
    return std::sqrt(s);
}

template <class T>
double max_abs(const DenseMatrix<T>& a) {
    double m = 0.0;
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.cols(); ++j) m = std::max(m, std::abs(a(i, j)));
    return m;
}

/// Horizontal concatenation [a b].
template <class T>
DenseMatrix<T> hcat(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
    ATMOR_REQUIRE(a.rows() == b.rows(), "hcat: row mismatch");
    DenseMatrix<T> c(a.rows(), a.cols() + b.cols());
    for (int i = 0; i < a.rows(); ++i) {
        for (int j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
        for (int j = 0; j < b.cols(); ++j) c(i, a.cols() + j) = b(i, j);
    }
    return c;
}

/// Contiguous sub-matrix copy: rows [r0, r0+nr), cols [c0, c0+nc).
template <class T>
DenseMatrix<T> submatrix(const DenseMatrix<T>& a, int r0, int c0, int nr, int nc) {
    ATMOR_REQUIRE(r0 >= 0 && c0 >= 0 && r0 + nr <= a.rows() && c0 + nc <= a.cols(),
                  "submatrix out of range");
    DenseMatrix<T> s(nr, nc);
    for (int i = 0; i < nr; ++i)
        for (int j = 0; j < nc; ++j) s(i, j) = a(r0 + i, c0 + j);
    return s;
}

}  // namespace atmor::la
