#include "la/lu.hpp"

#include <cmath>

#include "la/simd.hpp"
#include "util/check.hpp"

namespace {

/// xi[0..k) -= m * xj[0..k) on the elementwise simd kernels. Negating the
/// multiplier and adding is bit-identical to the subtract form (IEEE negation
/// is exact), so the blocked-solve == single-solve pins hold in every tier.
template <class T>
inline void row_sub(T* xi, T m, const T* xj, int k) {
    if constexpr (std::is_same_v<T, double>)
        atmor::la::simd::axpy(-m, xj, xi, static_cast<std::size_t>(k));
    else
        atmor::la::simd::zaxpy(-m, xj, xi, static_cast<std::size_t>(k));
}

}  // namespace

namespace atmor::la {

template <class T>
LuFactorization<T>::LuFactorization(DenseMatrix<T> a) : lu_(std::move(a)) {
    ATMOR_REQUIRE(lu_.square(), "LU requires a square matrix, got " << lu_.rows() << "x"
                                                                    << lu_.cols());
    const int n = lu_.rows();
    perm_.resize(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) perm_[static_cast<std::size_t>(i)] = i;

    for (int k = 0; k < n; ++k) {
        // Partial pivoting: pick the largest magnitude entry in column k.
        int piv = k;
        double best = std::abs(lu_(k, k));
        for (int i = k + 1; i < n; ++i) {
            const double mag = std::abs(lu_(i, k));
            if (mag > best) {
                best = mag;
                piv = i;
            }
        }
        ATMOR_CHECK(best > 0.0, "singular matrix in LU at column " << k);
        if (piv != k) {
            for (int j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
            std::swap(perm_[static_cast<std::size_t>(k)], perm_[static_cast<std::size_t>(piv)]);
            sign_ = -sign_;
        }
        const T pivot = lu_(k, k);
        for (int i = k + 1; i < n; ++i) {
            const T m = lu_(i, k) / pivot;
            lu_(i, k) = m;
            if (m == T(0)) continue;
            const T* rk = lu_.row_ptr(k);
            T* ri = lu_.row_ptr(i);
            for (int j = k + 1; j < n; ++j) ri[j] -= m * rk[j];
        }
    }
}

template <class T>
std::vector<T> LuFactorization<T>::solve(std::vector<T> b) const {
    const int n = dim();
    ATMOR_REQUIRE(static_cast<int>(b.size()) == n, "rhs size mismatch");
    // Apply permutation.
    std::vector<T> x(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] = b[static_cast<std::size_t>(perm_[static_cast<std::size_t>(i)])];
    // Forward substitution (unit lower).
    for (int i = 1; i < n; ++i) {
        const T* ri = lu_.row_ptr(i);
        T acc = x[static_cast<std::size_t>(i)];
        for (int j = 0; j < i; ++j) acc -= ri[j] * x[static_cast<std::size_t>(j)];
        x[static_cast<std::size_t>(i)] = acc;
    }
    // Backward substitution.
    for (int i = n - 1; i >= 0; --i) {
        const T* ri = lu_.row_ptr(i);
        T acc = x[static_cast<std::size_t>(i)];
        for (int j = i + 1; j < n; ++j) acc -= ri[j] * x[static_cast<std::size_t>(j)];
        x[static_cast<std::size_t>(i)] = acc / ri[i];
    }
    return x;
}

template <class T>
DenseMatrix<T> LuFactorization<T>::solve(const DenseMatrix<T>& b) const {
    ATMOR_REQUIRE(b.rows() == dim(), "rhs rows mismatch");
    const int n = dim();
    const int k = b.cols();
    // Blocked substitution: one pass over the packed factors serves all k
    // right-hand sides, with k-wide contiguous row updates. Column c matches
    // solve(b.col(c)) bit for bit (same per-column operation order).
    DenseMatrix<T> x(n, k);
    for (int i = 0; i < n; ++i) {
        const T* src = b.row_ptr(perm_[static_cast<std::size_t>(i)]);
        T* dst = x.row_ptr(i);
        for (int c = 0; c < k; ++c) dst[c] = src[c];
    }
    // Forward substitution (unit lower).
    for (int i = 1; i < n; ++i) {
        const T* ri = lu_.row_ptr(i);
        T* xi = x.row_ptr(i);
        for (int j = 0; j < i; ++j) row_sub(xi, ri[j], x.row_ptr(j), k);
    }
    // Backward substitution.
    for (int i = n - 1; i >= 0; --i) {
        const T* ri = lu_.row_ptr(i);
        T* xi = x.row_ptr(i);
        for (int j = i + 1; j < n; ++j) row_sub(xi, ri[j], x.row_ptr(j), k);
        const T d = ri[i];
        for (int c = 0; c < k; ++c) xi[c] /= d;
    }
    return x;
}

template <class T>
T LuFactorization<T>::determinant() const {
    T det = T(sign_);
    for (int i = 0; i < dim(); ++i) det *= lu_(i, i);
    return det;
}

template <class T>
double LuFactorization<T>::pivot_ratio() const {
    double lo = std::abs(lu_(0, 0)), hi = lo;
    for (int i = 1; i < dim(); ++i) {
        const double d = std::abs(lu_(i, i));
        lo = std::min(lo, d);
        hi = std::max(hi, d);
    }
    return hi == 0.0 ? 0.0 : lo / hi;
}

template class LuFactorization<double>;
template class LuFactorization<Complex>;

Vec solve(const Matrix& a, const Vec& b) { return Lu(a).solve(b); }
ZVec solve(const ZMatrix& a, const ZVec& b) { return ZLu(a).solve(b); }

Matrix inverse(const Matrix& a) { return Lu(a).solve(Matrix::identity(a.rows())); }
ZMatrix inverse(const ZMatrix& a) { return ZLu(a).solve(ZMatrix::identity(a.rows())); }

}  // namespace atmor::la
