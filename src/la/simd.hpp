// SIMD kernel substrate: the vector primitives every hot loop in the la/,
// sparse/ and core/ layers bottoms out in.
//
// Three implementation tiers share one dispatch point per kernel:
//   * scalar   -- reference loops, compiled with auto-vectorization disabled.
//                 These are the numerical anchors the tolerance-tagged kernel
//                 tests compare against, and the ATMOR_SCALAR_KERNELS runtime
//                 escape hatch routes every kernel here for debugging.
//   * omp-simd -- `#pragma omp simd` / restrict-annotated loops (built with
//                 -fopenmp-simd; no OpenMP runtime involved). The default.
//   * avx2     -- explicit AVX2/FMA intrinsics, compiled in when the build
//                 enables -mavx2 -mfma (CMake option ATMOR_AVX2).
//
// Numerical policy (see also tests/test_simd_kernels.cpp):
//   * Elementwise kernels (axpy, scale, zaxpy) are BIT-IDENTICAL across all
//     tiers: each output element is one IEEE mul + one IEEE add, never an
//     FMA, so the blocked-solve == single-solve exactness pins survive every
//     build configuration.
//   * Reduction kernels (dot, nrm2sq, spmv_row) reassociate the fold for
//     instruction-level parallelism; their results are deterministic for a
//     given build + escape-hatch setting but only tolerance-equal to the
//     scalar reference. Nothing pins reductions bit-exactly across kernel
//     tiers.
#pragma once

#include <complex>
#include <cstddef>

namespace atmor::la::simd {

using Complex = std::complex<double>;

/// True when the ATMOR_SCALAR_KERNELS escape hatch is active (environment
/// variable set to anything but "0", or force_scalar(true) was called).
bool scalar_forced();

/// Programmatic override of the escape hatch (tests and the kernel bench use
/// this to time scalar-vs-vectorized on one binary). Not thread-safe against
/// concurrent kernel calls; flip it only from single-threaded setup code.
void force_scalar(bool on);

/// Kernel tier compiled into this binary: "omp-simd" or "avx2".
const char* compiled_level();

/// Kernel tier actually dispatched to: compiled_level(), or "scalar" when
/// the escape hatch is active.
const char* active_level();

// ---------------------------------------------------------------------------
// Scalar reference kernels. Compiled with auto-vectorization off so they stay
// honest baselines even at -O3.
// ---------------------------------------------------------------------------
namespace scalar {
double dot(const double* a, const double* b, std::size_t n);
double nrm2sq(const double* a, std::size_t n);
void axpy(double alpha, const double* x, double* y, std::size_t n);
void scale(double alpha, double* x, std::size_t n);
double spmv_row(const double* vals, const int* cols, std::size_t nnz, const double* x);
void zaxpy(Complex alpha, const Complex* x, Complex* y, std::size_t n);
Complex zspmv_row(const double* vals, const int* cols, std::size_t nnz, const Complex* x);
}  // namespace scalar

// ---------------------------------------------------------------------------
// Dispatched kernels (escape hatch honoured on every call).
// ---------------------------------------------------------------------------

/// sum_i a[i] * b[i]  (reassociated reduction).
double dot(const double* a, const double* b, std::size_t n);

/// sum_i a[i]^2  (reassociated reduction).
double nrm2sq(const double* a, std::size_t n);

/// y[i] += alpha * x[i]  (elementwise; bit-identical across tiers).
void axpy(double alpha, const double* x, double* y, std::size_t n);

/// x[i] *= alpha  (elementwise; bit-identical across tiers).
void scale(double alpha, double* x, std::size_t n);

/// One CSR row: sum_k vals[k] * x[cols[k]]  (reassociated gather reduction).
double spmv_row(const double* vals, const int* cols, std::size_t nnz, const double* x);

/// y[i] += alpha * x[i] over complex data (elementwise real/imag updates;
/// bit-identical across tiers).
void zaxpy(Complex alpha, const Complex* x, Complex* y, std::size_t n);

/// One CSR row against a complex vector: sum_k vals[k] * x[cols[k]]
/// (reassociated gather reduction, real values).
Complex zspmv_row(const double* vals, const int* cols, std::size_t nnz, const Complex* x);

}  // namespace atmor::la::simd
