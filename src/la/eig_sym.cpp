#include "la/eig_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace atmor::la {

SymEigResult eigh(const Matrix& a_in) {
    ATMOR_REQUIRE(a_in.square(), "eigh: matrix must be square");
    const int n = a_in.rows();
    Matrix a(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < n; ++j) a(i, j) = 0.5 * (a_in(i, j) + a_in(j, i));
    Matrix v = Matrix::identity(n);

    const int max_sweeps = 60;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
        if (std::sqrt(off) < 1e-14 * (frobenius_norm(a) + 1e-300)) break;

        for (int p = 0; p < n - 1; ++p) {
            for (int q = p + 1; q < n; ++q) {
                if (a(p, q) == 0.0) continue;
                const double theta = (a(q, q) - a(p, p)) / (2.0 * a(p, q));
                const double t = ((theta >= 0.0) ? 1.0 : -1.0) /
                                 (std::abs(theta) + std::sqrt(1.0 + theta * theta));
                const double c = 1.0 / std::sqrt(1.0 + t * t);
                const double s = c * t;
                for (int k = 0; k < n; ++k) {  // rotate rows/cols p, q
                    const double akp = a(k, p), akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (int k = 0; k < n; ++k) {
                    const double apk = a(p, k), aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (int k = 0; k < n; ++k) {
                    const double vkp = v(k, p), vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    Vec values(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) values[static_cast<std::size_t>(i)] = a(i, i);
    std::vector<int> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int x, int y) {
        return values[static_cast<std::size_t>(x)] > values[static_cast<std::size_t>(y)];
    });
    SymEigResult out{Vec(static_cast<std::size_t>(n)), Matrix(n, n)};
    for (int j = 0; j < n; ++j) {
        const int src = order[static_cast<std::size_t>(j)];
        out.values[static_cast<std::size_t>(j)] = values[static_cast<std::size_t>(src)];
        for (int i = 0; i < n; ++i) out.vectors(i, j) = v(i, src);
    }
    return out;
}

}  // namespace atmor::la
