#include "la/solver_backend.hpp"

#include <functional>

#include "la/lu.hpp"
#include "la/schur.hpp"
#include "la/vector_ops.hpp"
#include "sparse/splu.hpp"
#include "util/check.hpp"

namespace atmor::la {

namespace {

/// Split an n x k complex block into its real/imaginary parts and recombine.
ZMatrix join_complex(const Matrix& re, const Matrix& im) {
    ZMatrix out(re.rows(), re.cols());
    for (int i = 0; i < re.rows(); ++i) {
        const double* r = re.row_ptr(i);
        const double* m = im.row_ptr(i);
        Complex* o = out.row_ptr(i);
        for (int j = 0; j < re.cols(); ++j) o[j] = Complex(r[j], m[j]);
    }
    return out;
}

/// Real-arithmetic factorisation of (s*I - A), s real. Complex right-hand
/// sides split into two real solves (4x fewer real multiplies than a complex
/// factorisation would spend).
template <class RealFactor>
class RealShiftFactorization final : public Factorization {
public:
    explicit RealShiftFactorization(RealFactor f) : f_(std::move(f)) {}
    [[nodiscard]] int dim() const override { return f_.dim(); }
    [[nodiscard]] Vec solve(const Vec& b) const override { return f_.solve(b); }
    [[nodiscard]] ZVec solve(const ZVec& b) const override {
        const Vec re = f_.solve(real_part(b));
        const Vec im = f_.solve(imag_part(b));
        ZVec out(b.size());
        for (std::size_t i = 0; i < b.size(); ++i) out[i] = Complex(re[i], im[i]);
        return out;
    }
    /// Blocked: one factor-pass per real/imaginary block.
    [[nodiscard]] Matrix solve(const Matrix& b) const override { return f_.solve(b); }
    [[nodiscard]] ZMatrix solve(const ZMatrix& b) const override {
        return join_complex(f_.solve(real_part(b)), f_.solve(imag_part(b)));
    }
    [[nodiscard]] double pivot_ratio() const override { return f_.pivot_ratio(); }

private:
    RealFactor f_;
};

template <class ComplexFactor>
class ComplexShiftFactorization final : public Factorization {
public:
    explicit ComplexShiftFactorization(ComplexFactor f) : f_(std::move(f)) {}
    [[nodiscard]] int dim() const override { return f_.dim(); }
    [[nodiscard]] ZVec solve(const ZVec& b) const override { return f_.solve(b); }
    [[nodiscard]] Vec solve(const Vec&) const override {
        ATMOR_CHECK(false, "Factorization: real solve requires a real shift");
    }
    [[nodiscard]] ZMatrix solve(const ZMatrix& b) const override { return f_.solve(b); }
    [[nodiscard]] Matrix solve(const Matrix&) const override {
        ATMOR_CHECK(false, "Factorization: real solve requires a real shift");
    }
    [[nodiscard]] double pivot_ratio() const override { return f_.pivot_ratio(); }

private:
    ComplexFactor f_;
};

class SchurFactorization final : public Factorization {
public:
    SchurFactorization(std::shared_ptr<const ComplexSchur> schur, Complex shift)
        : schur_(std::move(schur)), shift_(shift) {}
    [[nodiscard]] int dim() const override { return schur_->dim(); }
    [[nodiscard]] ZVec solve(const ZVec& b) const override {
        return schur_->solve_shifted(shift_, b);
    }
    [[nodiscard]] Vec solve(const Vec& b) const override {
        ATMOR_CHECK(shift_.imag() == 0.0, "SchurFactorization: real solve needs real shift");
        return real_part(schur_->solve_shifted(shift_, complexify(b)));
    }
    // Block solves use the base column-wise default: the triangular backsolve
    // is already O(n^2) per column with no index traversal to amortise.
    [[nodiscard]] double pivot_ratio() const override {
        // Distance of the shift to the spectrum, normalised by the farthest
        // eigenvalue: the triangular backsolve's effective pivot ratio.
        const ZVec eigs = schur_->eigenvalues();
        double lo = 0.0, hi = 0.0;
        for (std::size_t i = 0; i < eigs.size(); ++i) {
            const double d = std::abs(shift_ - eigs[i]);
            if (i == 0) {
                lo = hi = d;
            } else {
                lo = std::min(lo, d);
                hi = std::max(hi, d);
            }
        }
        return hi > 0.0 ? lo / hi : 0.0;
    }

private:
    std::shared_ptr<const ComplexSchur> schur_;
    Complex shift_;
};

/// Dense materialisation of (s*I - A).
Matrix dense_shifted(const LinearOperator& a, double s) {
    Matrix m = a.to_dense();
    for (int i = 0; i < m.rows(); ++i)
        for (int j = 0; j < m.cols(); ++j) m(i, j) = -m(i, j);
    for (int i = 0; i < m.rows(); ++i) m(i, i) += s;
    return m;
}

ZMatrix dense_shifted(const LinearOperator& a, Complex s) {
    ZMatrix z = complexify(a.to_dense());
    for (int i = 0; i < z.rows(); ++i)
        for (int j = 0; j < z.cols(); ++j) z(i, j) = -z(i, j);
    for (int i = 0; i < z.rows(); ++i) z(i, i) += s;
    return z;
}

}  // namespace

ZMatrix Factorization::solve(const ZMatrix& b) const {
    ZMatrix x(b.rows(), b.cols());
    for (int j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
    return x;
}

Matrix Factorization::solve(const Matrix& b) const {
    Matrix x(b.rows(), b.cols());
    for (int j = 0; j < b.cols(); ++j) x.set_col(j, solve(b.col(j)));
    return x;
}

std::size_t SolverBackend::KeyHash::operator()(const Key& k) const {
    std::size_t h = std::hash<std::uint64_t>()(k.id);
    h ^= std::hash<double>()(k.re) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= std::hash<double>()(k.im) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

SolverBackend::SolverBackend(std::size_t max_cached) : max_cached_(max_cached) {
    ATMOR_REQUIRE(max_cached >= 1, "SolverBackend: cache must hold at least one entry");
}

std::shared_ptr<const Factorization> SolverBackend::factorization(const LinearOperator& a,
                                                                  Complex shift) {
    ATMOR_REQUIRE(a.square(), "SolverBackend: operator must be square");
    const Key key{a.id(), shift.real(), shift.imag()};
    {
        std::shared_lock<std::shared_mutex> lock(cache_mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            cache_hits_.fetch_add(1, std::memory_order_relaxed);
            return it->second;
        }
    }
    // Factor OUTSIDE the lock so distinct shifts factor concurrently. Two
    // threads racing on the same brand-new key both pay the factor cost; the
    // insert below hands the loser the winner's (identical-input) handle.
    auto f = factor(a, shift);
    factorizations_.fetch_add(1, std::memory_order_relaxed);
    cache_misses_.fetch_add(1, std::memory_order_relaxed);
    note_factor_dim(f->dim());
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    if (cache_.size() >= max_cached_) {
        cache_.erase(insertion_order_.front());
        insertion_order_.pop_front();
    }
    cache_.emplace(key, f);
    insertion_order_.push_back(key);
    return f;
}

std::shared_ptr<const Factorization> SolverBackend::factorize(const LinearOperator& a,
                                                              Complex shift) {
    ATMOR_REQUIRE(a.square(), "SolverBackend: operator must be square");
    factorizations_.fetch_add(1, std::memory_order_relaxed);
    auto f = factor(a, shift);
    note_factor_dim(f->dim());
    return f;
}

void SolverBackend::note_factor_dim(int dim) {
    int cur = max_factor_dim_.load(std::memory_order_relaxed);
    while (dim > cur &&
           !max_factor_dim_.compare_exchange_weak(cur, dim, std::memory_order_relaxed)) {
    }
}

ZVec SolverBackend::solve_shifted(const LinearOperator& a, Complex shift, const ZVec& b) {
    solves_.fetch_add(1, std::memory_order_relaxed);
    return factorization(a, shift)->solve(b);
}

Vec SolverBackend::solve_shifted(const LinearOperator& a, double shift, const Vec& b) {
    solves_.fetch_add(1, std::memory_order_relaxed);
    return factorization(a, Complex(shift, 0.0))->solve(b);
}

ZMatrix SolverBackend::solve_shifted(const LinearOperator& a, Complex shift, const ZMatrix& b) {
    solves_.fetch_add(b.cols(), std::memory_order_relaxed);
    return factorization(a, shift)->solve(b);
}

Matrix SolverBackend::solve_shifted(const LinearOperator& a, double shift, const Matrix& b) {
    solves_.fetch_add(b.cols(), std::memory_order_relaxed);
    return factorization(a, Complex(shift, 0.0))->solve(b);
}

Vec SolverBackend::solve(const LinearOperator& a, const Vec& b) {
    // A x = b  <=>  (0*I - A) x = -b.
    Vec x = solve_shifted(a, 0.0, b);
    scale(-1.0, x);
    return x;
}

SolverStats SolverBackend::stats() const {
    SolverStats s;
    s.factorizations = factorizations_.load(std::memory_order_relaxed);
    s.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    s.solves = solves_.load(std::memory_order_relaxed);
    s.max_factor_dim = max_factor_dim_.load(std::memory_order_relaxed);
    return s;
}

void SolverBackend::clear_cache() {
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    cache_.clear();
    insertion_order_.clear();
}

std::size_t SolverBackend::cached_count() const {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    return cache_.size();
}

std::shared_ptr<const Factorization> DenseLuBackend::factor(const LinearOperator& a,
                                                            Complex shift) {
    if (shift.imag() == 0.0) {
        return std::make_shared<RealShiftFactorization<Lu>>(Lu(dense_shifted(a, shift.real())));
    }
    return std::make_shared<ComplexShiftFactorization<ZLu>>(ZLu(dense_shifted(a, shift)));
}

std::shared_ptr<const Factorization> SparseLuBackend::factor(const LinearOperator& a,
                                                             Complex shift) {
    const sparse::CsrMatrix* csr = a.csr();
    sparse::CsrMatrix converted;
    if (csr == nullptr) {
        converted = sparse::CsrMatrix::from_dense(a.to_dense());
        csr = &converted;
    }
    if (shift.imag() == 0.0) {
        return std::make_shared<RealShiftFactorization<sparse::SpLu>>(
            sparse::splu_shifted(*csr, shift.real()));
    }
    return std::make_shared<ComplexShiftFactorization<sparse::ZSpLu>>(
        sparse::splu_shifted(*csr, shift));
}

std::shared_ptr<const ComplexSchur> SchurBackend::schur_for(const LinearOperator& a) {
    {
        std::lock_guard<std::mutex> lock(schur_mutex_);
        auto it = schur_.find(a.id());
        if (it != schur_.end()) return it->second;
    }
    // Decompose outside the lock (dense O(n^3)); first insertion wins.
    auto s = std::make_shared<const ComplexSchur>(a.to_dense());
    std::lock_guard<std::mutex> lock(schur_mutex_);
    auto it = schur_.find(a.id());
    if (it != schur_.end()) return it->second;
    schur_count_.fetch_add(1, std::memory_order_relaxed);
    if (schur_.size() >= max_cached()) {
        schur_.erase(schur_order_.front());
        schur_order_.pop_front();
    }
    schur_.emplace(a.id(), s);
    schur_order_.push_back(a.id());
    return s;
}

std::shared_ptr<const Factorization> SchurBackend::factor(const LinearOperator& a,
                                                          Complex shift) {
    return std::make_shared<SchurFactorization>(schur_for(a), shift);
}

double shift_pivot_ratio(SolverBackend& backend, const LinearOperator& a, Complex shift) {
    try {
        return backend.factorization(a, shift)->pivot_ratio();
    } catch (const util::InternalError&) {
        return 0.0;  // exact breakdown: same caller error as near-singular
    }
}

std::shared_ptr<SolverBackend> make_default_backend(const LinearOperator& a) {
    if (a.is_sparse()) return std::make_shared<SparseLuBackend>();
    return std::make_shared<DenseLuBackend>();
}

std::shared_ptr<SolverBackend> make_resolvent_backend(const LinearOperator& a) {
    if (a.is_sparse()) return std::make_shared<SparseLuBackend>();
    return std::make_shared<SchurBackend>();
}

}  // namespace atmor::la
