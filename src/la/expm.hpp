// Dense matrix exponential via scaling-and-squaring with diagonal Pade
// approximation. Used by the property-test suite to validate the paper's
// Theorem 1/2 time-domain identities (e^{A t} (x) e^{B t} = e^{(A(+)B) t})
// and by the variational-ODE cross-checks of the associated realisations.
#pragma once

#include "la/matrix.hpp"

namespace atmor::la {

/// e^A for a real square matrix ([6/6] Pade + scaling and squaring).
Matrix expm(const Matrix& a);

}  // namespace atmor::la
