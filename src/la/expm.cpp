#include "la/expm.hpp"

#include <cmath>

#include "la/lu.hpp"
#include "util/check.hpp"

namespace atmor::la {

namespace {

double norm1(const Matrix& a) {
    double best = 0.0;
    for (int j = 0; j < a.cols(); ++j) {
        double s = 0.0;
        for (int i = 0; i < a.rows(); ++i) s += std::abs(a(i, j));
        best = std::max(best, s);
    }
    return best;
}

}  // namespace

Matrix expm(const Matrix& a) {
    ATMOR_REQUIRE(a.square(), "expm: matrix must be square");
    const int n = a.rows();
    if (n == 0) return a;

    // Scale so ||B||_1 <= 1/2, apply [6/6] Pade, then square back.
    const double nrm = norm1(a);
    int s = 0;
    if (nrm > 0.5) s = static_cast<int>(std::ceil(std::log2(nrm / 0.5)));
    Matrix b = a;
    b *= std::ldexp(1.0, -s);

    // Pade [6/6] coefficients c_k = ((2m-k)! m!) / ((2m)! k! (m-k)!), m = 6.
    constexpr int m = 6;
    double c[m + 1];
    c[0] = 1.0;
    for (int k = 0; k < m; ++k)
        c[k + 1] = c[k] * static_cast<double>(m - k) /
                   (static_cast<double>(2 * m - k) * static_cast<double>(k + 1));

    Matrix power = Matrix::identity(n);
    Matrix num = Matrix::identity(n);  // N = sum c_k B^k
    Matrix den = Matrix::identity(n);  // D = sum (-1)^k c_k B^k
    num *= c[0];
    den *= c[0];
    for (int k = 1; k <= m; ++k) {
        power = matmul(power, b);
        Matrix term = power;
        term *= c[k];
        num += term;
        if (k % 2 == 0)
            den += term;
        else
            den -= term;
    }
    Matrix e = Lu(den).solve(num);
    for (int i = 0; i < s; ++i) e = matmul(e, e);
    return e;
}

}  // namespace atmor::la
