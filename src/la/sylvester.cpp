#include "la/sylvester.hpp"

#include <cmath>

#include "util/check.hpp"

namespace atmor::la {

ZMatrix tri_sylvester_shifted(const ZMatrix& t1, const ZMatrix& t2, Complex sigma, ZMatrix c) {
    const int m = t1.rows(), p = t2.rows();
    ATMOR_REQUIRE(t1.square() && t2.square(), "tri_sylvester_shifted: factors must be square");
    ATMOR_REQUIRE(c.rows() == m && c.cols() == p, "tri_sylvester_shifted: C shape mismatch");

    // Column j couples only to columns k > j through (Y T2^T)_{:,j} =
    // sum_k y_k T2(j,k); solve descending.
    for (int j = p - 1; j >= 0; --j) {
        // rhs_j = C_j + sum_{k > j} T2(j,k) y_k  (already stored in c cols k).
        for (int k = j + 1; k < p; ++k) {
            const Complex w = t2(j, k);
            if (w == Complex(0)) continue;
            for (int i = 0; i < m; ++i) c(i, j) += w * c(i, k);
        }
        // ((sigma - T2(j,j)) I - T1) y_j = rhs_j : shifted triangular backsolve.
        const Complex shift = sigma - t2(j, j);
        for (int i = m - 1; i >= 0; --i) {
            Complex acc = c(i, j);
            for (int k = i + 1; k < m; ++k) acc += t1(i, k) * c(k, j);
            const Complex d = shift - t1(i, i);
            ATMOR_CHECK(std::abs(d) > 0.0,
                        "tri_sylvester_shifted: singular pencil (sigma hits eigenvalue sum)");
            c(i, j) = acc / d;
        }
    }
    return c;
}

ZMatrix tri_sylvester_sum(const ZMatrix& t1, const ZMatrix& t2, ZMatrix c) {
    const int m = t1.rows(), p = t2.rows();
    ATMOR_REQUIRE(t1.square() && t2.square(), "tri_sylvester_sum: factors must be square");
    ATMOR_REQUIRE(c.rows() == m && c.cols() == p, "tri_sylvester_sum: C shape mismatch");

    // (Y T2)_{:,j} = sum_{k <= j} y_k T2(k,j): ascending columns.
    for (int j = 0; j < p; ++j) {
        for (int k = 0; k < j; ++k) {
            const Complex w = t2(k, j);
            if (w == Complex(0)) continue;
            for (int i = 0; i < m; ++i) c(i, j) -= w * c(i, k);
        }
        // (T1 + T2(j,j) I) y_j = rhs_j.
        const Complex shift = t2(j, j);
        for (int i = m - 1; i >= 0; --i) {
            Complex acc = c(i, j);
            for (int k = i + 1; k < m; ++k) acc -= t1(i, k) * c(k, j);
            const Complex d = t1(i, i) + shift;
            ATMOR_CHECK(std::abs(d) > 0.0, "tri_sylvester_sum: singular pencil");
            c(i, j) = acc / d;
        }
    }
    return c;
}

ZMatrix resolvent_kron_sum_solve(const ComplexSchur& schur_a, Complex sigma, const ZMatrix& c) {
    const int n = schur_a.dim();
    ATMOR_REQUIRE(c.rows() == n && c.cols() == n, "resolvent_kron_sum_solve: C must be n x n");
    const ZMatrix& t = schur_a.t();
    const ZMatrix& z = schur_a.z();
    // sigma X - A X - X A^T = C, A = Z T Z^H  =>  with Y = Z^H X conj(Z):
    // sigma Y - T Y - Y T^T = Z^H C conj(Z).
    const ZMatrix zbar = conjugate(z);
    ZMatrix rhs = matmul(adjoint(z), matmul(c, zbar));
    ZMatrix y = tri_sylvester_shifted(t, t, sigma, std::move(rhs));
    // X = Z Y Z^T.
    return matmul(z, matmul(y, transpose(z)));
}

Matrix solve_sylvester(const Matrix& a, const Matrix& b, const Matrix& c) {
    ATMOR_REQUIRE(a.square() && b.square(), "solve_sylvester: A, B must be square");
    ATMOR_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
                  "solve_sylvester: C shape mismatch");
    const ComplexSchur sa(a);
    const ComplexSchur sb(b);
    // A X + X B = C => T_A Y + Y T_B = U^H C W, Y = U^H X W.
    ZMatrix rhs = matmul(adjoint(sa.z()), matmul(complexify(c), sb.z()));
    ZMatrix y = tri_sylvester_sum(sa.t(), sb.t(), std::move(rhs));
    return real_part(matmul(sa.z(), matmul(y, adjoint(sb.z()))));
}

Matrix solve_lyapunov(const Matrix& a, const Matrix& q) {
    ATMOR_REQUIRE(a.square() && q.rows() == a.rows() && q.cols() == a.cols(),
                  "solve_lyapunov: shape mismatch");
    const ComplexSchur sa(a);
    // A P + P A^T = Q is the sigma = 0 case of the kron-sum resolvent with C = -Q.
    ZMatrix c = complexify(q);
    c *= Complex(-1.0, 0.0);
    const ZMatrix zbar = conjugate(sa.z());
    ZMatrix rhs = matmul(adjoint(sa.z()), matmul(c, zbar));
    ZMatrix y = tri_sylvester_shifted(sa.t(), sa.t(), Complex(0), std::move(rhs));
    return real_part(matmul(sa.z(), matmul(y, transpose(sa.z()))));
}

Matrix controllability_gramian(const Matrix& a, const Matrix& b) {
    ATMOR_REQUIRE(b.rows() == a.rows(), "controllability_gramian: B rows mismatch");
    Matrix q(a.rows(), a.rows());
    for (int i = 0; i < a.rows(); ++i)
        for (int j = 0; j < a.rows(); ++j) {
            double s = 0.0;
            for (int k = 0; k < b.cols(); ++k) s += b(i, k) * b(j, k);
            q(i, j) = -s;
        }
    return solve_lyapunov(a, q);
}

}  // namespace atmor::la
