// Cyclic Jacobi eigensolver for symmetric matrices. Used for gramian-based
// order selection (Hankel-type singular values, paper Remark 1).
#pragma once

#include "la/matrix.hpp"

namespace atmor::la {

struct SymEigResult {
    Vec values;   ///< eigenvalues, descending
    Matrix vectors;  ///< corresponding orthonormal eigenvectors (columns)
};

/// Eigendecomposition of a symmetric matrix (symmetrised internally).
SymEigResult eigh(const Matrix& a);

}  // namespace atmor::la
