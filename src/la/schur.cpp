#include "la/schur.hpp"

#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace atmor::la {

namespace {

constexpr double kEps = std::numeric_limits<double>::epsilon();

/// Householder reflector annihilating x[1..len) ; returns beta, writes v into
/// x (v[0] = 1 implicit), and the new leading entry into x0_out.
double small_householder(double* x, int len, double* x0_out) {
    double sigma = 0.0;
    for (int i = 1; i < len; ++i) sigma += x[i] * x[i];
    if (sigma == 0.0) {
        *x0_out = x[0];
        return 0.0;
    }
    const double alpha = x[0];
    const double mu = std::sqrt(alpha * alpha + sigma);
    const double v0 = (alpha <= 0.0) ? alpha - mu : -sigma / (alpha + mu);
    const double beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
    for (int i = 1; i < len; ++i) x[i] /= v0;
    *x0_out = mu;
    return beta;
}

}  // namespace

HessenbergResult hessenberg_reduce(const Matrix& a) {
    ATMOR_REQUIRE(a.square(), "hessenberg_reduce: matrix must be square");
    const int n = a.rows();
    Matrix h = a;
    Matrix q = Matrix::identity(n);
    if (n <= 2) return {h, q};

    Vec v(static_cast<std::size_t>(n));
    for (int k = 0; k < n - 2; ++k) {
        const int len = n - k - 1;
        for (int i = 0; i < len; ++i) v[static_cast<std::size_t>(i)] = h(k + 1 + i, k);
        double head = 0.0;
        const double beta = small_householder(v.data(), len, &head);
        if (beta == 0.0) continue;
        v[0] = 1.0;

        // H <- P H  (rows k+1..n-1, all columns >= k).
        for (int j = k; j < n; ++j) {
            double w = 0.0;
            for (int i = 0; i < len; ++i) w += v[static_cast<std::size_t>(i)] * h(k + 1 + i, j);
            w *= beta;
            for (int i = 0; i < len; ++i) h(k + 1 + i, j) -= w * v[static_cast<std::size_t>(i)];
        }
        // H <- H P  (cols k+1..n-1, all rows).
        for (int i = 0; i < n; ++i) {
            double w = 0.0;
            for (int j = 0; j < len; ++j) w += h(i, k + 1 + j) * v[static_cast<std::size_t>(j)];
            w *= beta;
            for (int j = 0; j < len; ++j) h(i, k + 1 + j) -= w * v[static_cast<std::size_t>(j)];
        }
        // Q <- Q P.
        for (int i = 0; i < n; ++i) {
            double w = 0.0;
            for (int j = 0; j < len; ++j) w += q(i, k + 1 + j) * v[static_cast<std::size_t>(j)];
            w *= beta;
            for (int j = 0; j < len; ++j) q(i, k + 1 + j) -= w * v[static_cast<std::size_t>(j)];
        }
        h(k + 1, k) = head;
        for (int i = k + 2; i < n; ++i) h(i, k) = 0.0;
    }
    return {h, q};
}

namespace {

/// Apply the 3 (or 2) element Householder (v, beta) as a similarity transform
/// during the Francis bulge chase. k = pivot row, nr = reflector size.
void apply_bulge_reflector(Matrix& h, Matrix& q, const double* v, double beta, int k, int nr,
                           int l, int m) {
    const int n = h.rows();
    if (beta == 0.0) return;
    // Left: rows k..k+nr-1, columns max(l, k-1)..n-1.
    const int c0 = (k > l) ? k - 1 : l;
    for (int j = c0; j < n; ++j) {
        double w = 0.0;
        for (int i = 0; i < nr; ++i) w += v[i] * h(k + i, j);
        w *= beta;
        for (int i = 0; i < nr; ++i) h(k + i, j) -= w * v[i];
    }
    // Right: columns k..k+nr-1, rows 0..min(k+nr, m).
    const int r1 = std::min(k + nr, m);
    for (int i = 0; i <= r1; ++i) {
        double w = 0.0;
        for (int j = 0; j < nr; ++j) w += h(i, k + j) * v[j];
        w *= beta;
        for (int j = 0; j < nr; ++j) h(i, k + j) -= w * v[j];
    }
    // Accumulate Q <- Q P.
    for (int i = 0; i < n; ++i) {
        double w = 0.0;
        for (int j = 0; j < nr; ++j) w += q(i, k + j) * v[j];
        w *= beta;
        for (int j = 0; j < nr; ++j) q(i, k + j) -= w * v[j];
    }
}

/// Apply a Givens-style 2x2 rotation G = [[c, -s], [s, c]] as a similarity
/// transform on rows/cols (p, p+1) of T, accumulating into Q.
void apply_rotation(Matrix& t, Matrix& q, int p, double c, double s) {
    const int n = t.rows();
    for (int j = 0; j < n; ++j) {  // T <- G^T T
        const double a = t(p, j), b = t(p + 1, j);
        t(p, j) = c * a + s * b;
        t(p + 1, j) = -s * a + c * b;
    }
    for (int i = 0; i < n; ++i) {  // T <- T G
        const double a = t(i, p), b = t(i, p + 1);
        t(i, p) = c * a + s * b;
        t(i, p + 1) = -s * a + c * b;
    }
    for (int i = 0; i < n; ++i) {  // Q <- Q G
        const double a = q(i, p), b = q(i, p + 1);
        q(i, p) = c * a + s * b;
        q(i, p + 1) = -s * a + c * b;
    }
}

/// Split any 2x2 diagonal block with real eigenvalues into two 1x1 blocks.
void split_real_2x2_blocks(Matrix& t, Matrix& q) {
    const int n = t.rows();
    for (int p = 0; p + 1 < n; ++p) {
        if (t(p + 1, p) == 0.0) continue;
        const double a = t(p, p), b = t(p, p + 1), c = t(p + 1, p), d = t(p + 1, p + 1);
        const double half = 0.5 * (a - d);
        const double disc = half * half + b * c;
        if (disc < 0.0) {
            ++p;  // genuine complex pair: keep the block
            continue;
        }
        // Real eigenvalues: rotate so the block becomes upper triangular.
        const double sq = std::sqrt(disc);
        const double mid = 0.5 * (a + d);
        // Pick the eigenvalue that maximises |lambda - d| for a well-scaled vector.
        const double lam1 = mid + sq, lam2 = mid - sq;
        const double lam = (std::abs(lam1 - d) >= std::abs(lam2 - d)) ? lam1 : lam2;
        const double v0 = lam - d, v1 = c;
        const double nrm = std::hypot(v0, v1);
        if (nrm == 0.0) continue;
        apply_rotation(t, q, p, v0 / nrm, v1 / nrm);
        t(p + 1, p) = 0.0;
    }
}

}  // namespace

RealSchurResult real_schur(const Matrix& a) {
    ATMOR_REQUIRE(a.square(), "real_schur: matrix must be square");
    const int n = a.rows();
    auto [h, q] = hessenberg_reduce(a);
    if (n <= 1) return {h, q};

    int m = n - 1;      // active window end
    int iter = 0;       // iterations on the current window
    long total = 0;     // global safety counter
    const long total_limit = 60L * n + 200;

    while (m > 0) {
        ATMOR_CHECK(total++ < total_limit, "Francis QR failed to converge (n=" << n << ")");

        // Find the start l of the trailing unreduced window [l..m].
        int l = m;
        while (l > 0) {
            double s = std::abs(h(l - 1, l - 1)) + std::abs(h(l, l));
            if (s == 0.0) s = frobenius_norm(h);
            if (std::abs(h(l, l - 1)) <= kEps * s) {
                h(l, l - 1) = 0.0;
                break;
            }
            --l;
        }

        if (l == m) {  // 1x1 converged
            --m;
            iter = 0;
            continue;
        }
        if (l == m - 1) {  // 2x2 converged (classified/split later)
            m -= 2;
            iter = 0;
            continue;
        }

        ++iter;
        double shift_sum, shift_prod;
        if (iter % 11 == 0) {
            // Exceptional (Wilkinson ad-hoc) shift to break symmetry cycles.
            const double s = std::abs(h(m, m - 1)) + std::abs(h(m - 1, m - 2));
            shift_sum = 1.5 * s;
            shift_prod = s * s;
        } else {
            shift_sum = h(m - 1, m - 1) + h(m, m);
            shift_prod = h(m - 1, m - 1) * h(m, m) - h(m - 1, m) * h(m, m - 1);
        }

        // First column of (H - aI)(H - bI) restricted to the window.
        double x = h(l, l) * h(l, l) + h(l, l + 1) * h(l + 1, l) - shift_sum * h(l, l) +
                   shift_prod;
        double y = h(l + 1, l) * (h(l, l) + h(l + 1, l + 1) - shift_sum);
        double z = h(l + 2, l + 1) * h(l + 1, l);

        for (int k = l; k <= m - 2; ++k) {
            const int nr = (k + 2 <= m) ? 3 : 2;  // always 3 inside this loop
            double v[3] = {x, y, z};
            // Scale to avoid overflow in squaring.
            const double s = std::abs(x) + std::abs(y) + std::abs(z);
            if (s != 0.0) {
                v[0] /= s;
                v[1] /= s;
                v[2] /= s;
            }
            double head = 0.0;
            const double beta = small_householder(v, nr, &head);
            v[0] = 1.0;
            apply_bulge_reflector(h, q, v, beta, k, nr, l, m);
            if (k > l) {
                h(k, k - 1) = (s != 0.0) ? head * s : h(k, k - 1);
                for (int i = 1; i < nr; ++i) h(k + i, k - 1) = 0.0;
            }
            if (k < m - 2) {
                x = h(k + 1, k);
                y = h(k + 2, k);
                z = h(k + 3, k);
            }
        }
        // Final 2-element reflector to clear the last bulge entry H(m, m-2).
        {
            const int k = m - 1;
            double v[2] = {h(k, k - 1), h(k + 1, k - 1)};
            const double s = std::abs(v[0]) + std::abs(v[1]);
            if (s != 0.0) {
                v[0] /= s;
                v[1] /= s;
                double head = 0.0;
                const double beta = small_householder(v, 2, &head);
                v[0] = 1.0;
                apply_bulge_reflector(h, q, v, beta, k, 2, l, m);
                h(k, k - 1) = head * s;
                h(k + 1, k - 1) = 0.0;
            }
        }
    }

    // Clean below-subdiagonal dust and split real-eigenvalue 2x2 blocks.
    for (int i = 0; i < n; ++i)
        for (int j = 0; j < i - 1; ++j) h(i, j) = 0.0;
    split_real_2x2_blocks(h, q);
    return {h, q};
}

ComplexSchur::ComplexSchur(const Matrix& a) {
    auto [t, q] = real_schur(a);
    const int n = t.rows();
    t_ = complexify(t);
    z_ = complexify(q);

    // Turn each remaining 2x2 block (complex pair) into complex triangular
    // form with a 2x2 unitary similarity.
    for (int p = 0; p + 1 < n; ++p) {
        if (t(p + 1, p) == 0.0) continue;
        const double a11 = t(p, p), a12 = t(p, p + 1);
        const double a21 = t(p + 1, p), a22 = t(p + 1, p + 1);
        const double half = 0.5 * (a11 - a22);
        const double disc = half * half + a12 * a21;
        ATMOR_CHECK(disc < 0.0, "unsplit real 2x2 block in complex Schur");
        const Complex lambda(0.5 * (a11 + a22), std::sqrt(-disc));
        // Eigenvector v = [lambda - a22, a21]^T (a21 != 0 in an unreduced block).
        Complex v0 = lambda - a22;
        Complex v1 = a21;
        const double nrm = std::sqrt(std::norm(v0) + std::norm(v1));
        v0 /= nrm;
        v1 /= nrm;
        // Unitary U = [[v0, -conj(v1)], [v1, conj(v0)]].
        const Complex u00 = v0, u01 = -std::conj(v1);
        const Complex u10 = v1, u11 = std::conj(v0);

        // T <- U^H T (rows p, p+1).
        for (int j = 0; j < n; ++j) {
            const Complex x = t_(p, j), y = t_(p + 1, j);
            t_(p, j) = std::conj(u00) * x + std::conj(u10) * y;
            t_(p + 1, j) = std::conj(u01) * x + std::conj(u11) * y;
        }
        // T <- T U (cols p, p+1).
        for (int i = 0; i < n; ++i) {
            const Complex x = t_(i, p), y = t_(i, p + 1);
            t_(i, p) = x * u00 + y * u10;
            t_(i, p + 1) = x * u01 + y * u11;
        }
        // Z <- Z U.
        for (int i = 0; i < n; ++i) {
            const Complex x = z_(i, p), y = z_(i, p + 1);
            z_(i, p) = x * u00 + y * u10;
            z_(i, p + 1) = x * u01 + y * u11;
        }
        t_(p + 1, p) = Complex(0.0, 0.0);
        ++p;
    }
}

ZVec ComplexSchur::eigenvalues() const {
    ZVec ev(static_cast<std::size_t>(dim()));
    for (int i = 0; i < dim(); ++i) ev[static_cast<std::size_t>(i)] = t_(i, i);
    return ev;
}

ZVec ComplexSchur::to_schur_basis(const ZVec& x) const {
    ATMOR_REQUIRE(static_cast<int>(x.size()) == dim(), "to_schur_basis: size mismatch");
    ZVec y(static_cast<std::size_t>(dim()), Complex(0));
    for (int i = 0; i < dim(); ++i) {
        Complex acc(0);
        for (int k = 0; k < dim(); ++k) acc += std::conj(z_(k, i)) * x[static_cast<std::size_t>(k)];
        y[static_cast<std::size_t>(i)] = acc;
    }
    return y;
}

ZVec ComplexSchur::from_schur_basis(const ZVec& x) const {
    ATMOR_REQUIRE(static_cast<int>(x.size()) == dim(), "from_schur_basis: size mismatch");
    return matvec(z_, x);
}

ZVec ComplexSchur::solve_shifted_triangular(Complex sigma, ZVec w) const {
    const int n = dim();
    ATMOR_REQUIRE(static_cast<int>(w.size()) == n, "solve_shifted_triangular: size mismatch");
    for (int i = n - 1; i >= 0; --i) {
        Complex acc = w[static_cast<std::size_t>(i)];
        for (int j = i + 1; j < n; ++j) acc += t_(i, j) * w[static_cast<std::size_t>(j)];
        // (sigma I - T) x = w  =>  (sigma - T_ii) x_i - sum_j T_ij x_j = w_i.
        const Complex d = sigma - t_(i, i);
        ATMOR_CHECK(std::abs(d) > 0.0, "shift sigma hits an eigenvalue");
        w[static_cast<std::size_t>(i)] = acc / d;
    }
    return w;
}

ZVec ComplexSchur::solve_shifted(Complex sigma, const ZVec& b) const {
    return from_schur_basis(solve_shifted_triangular(sigma, to_schur_basis(b)));
}

ZVec ComplexSchur::apply(const ZVec& x) const {
    ZVec y = to_schur_basis(x);
    const int n = dim();
    ZVec ty(static_cast<std::size_t>(n), Complex(0));
    for (int i = 0; i < n; ++i) {
        Complex acc(0);
        for (int j = i; j < n; ++j) acc += t_(i, j) * y[static_cast<std::size_t>(j)];
        ty[static_cast<std::size_t>(i)] = acc;
    }
    return from_schur_basis(ty);
}

ZVec eigenvalues(const Matrix& a) {
    auto [t, q] = real_schur(a);
    (void)q;
    const int n = t.rows();
    ZVec ev(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
        if (p + 1 < n && t(p + 1, p) != 0.0) {
            const double half = 0.5 * (t(p, p) - t(p + 1, p + 1));
            const double disc = half * half + t(p, p + 1) * t(p + 1, p);
            const double mid = 0.5 * (t(p, p) + t(p + 1, p + 1));
            ATMOR_CHECK(disc < 0.0, "unsplit real block in eigenvalues()");
            const double im = std::sqrt(-disc);
            ev[static_cast<std::size_t>(p)] = Complex(mid, im);
            ev[static_cast<std::size_t>(p + 1)] = Complex(mid, -im);
            ++p;
        } else {
            ev[static_cast<std::size_t>(p)] = Complex(t(p, p), 0.0);
        }
    }
    return ev;
}

double spectral_abscissa(const Matrix& a) {
    double m = -std::numeric_limits<double>::infinity();
    for (const auto& ev : eigenvalues(a)) m = std::max(m, ev.real());
    return m;
}

bool is_hurwitz(const Matrix& a, double margin) { return spectral_abscissa(a) < -margin; }

}  // namespace atmor::la
