// Incremental orthonormal basis construction with deflation.
//
// The MOR front-ends feed moment vectors (from H1, the associated H2(s),
// H3(s), possibly at several expansion points) into a BasisBuilder; linearly
// dependent directions are deflated, which is how the "13th-order ROM from
// 6+3+2 matched moments" counts of the paper arise.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace atmor::la {

/// Grows an orthonormal set of columns by modified Gram-Schmidt with a single
/// reorthogonalisation pass; near-dependent vectors are rejected (deflated).
class BasisBuilder {
public:
    /// @param dim ambient dimension
    /// @param deflation_tol a candidate is rejected when its orthogonal
    ///        residual falls below deflation_tol * ||candidate||.
    explicit BasisBuilder(int dim, double deflation_tol = 1e-10);

    /// Try to add one vector; returns true if it extended the basis.
    bool add(const Vec& v);

    /// Add every column of m; returns how many survived deflation.
    int add_columns(const Matrix& m);

    /// Add the real and imaginary parts of a complex vector (used for
    /// non-real expansion points; the projector must stay real).
    int add_complex(const ZVec& v);

    [[nodiscard]] int dim() const { return dim_; }
    [[nodiscard]] int size() const { return static_cast<int>(basis_.size()); }

    /// Basis as a dim x size matrix with orthonormal columns.
    [[nodiscard]] Matrix matrix() const;

private:
    int dim_;
    double tol_;
    std::vector<Vec> basis_;
};

/// Orthonormalise the columns of m (rank-revealing); returns dim x r matrix.
Matrix orthonormalize_columns(const Matrix& m, double deflation_tol = 1e-10);

}  // namespace atmor::la
