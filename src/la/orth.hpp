// Incremental orthonormal basis construction with deflation.
//
// The MOR front-ends feed moment vectors (from H1, the associated H2(s),
// H3(s), possibly at several expansion points) into a BasisBuilder; linearly
// dependent directions are deflated, which is how the "13th-order ROM from
// 6+3+2 matched moments" counts of the paper arise.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace atmor::la {

/// Grows an orthonormal set of columns with deflation of near-dependent
/// directions.
///
/// Two ingestion paths share one deflation rule (reject when the orthogonal
/// residual falls below deflation_tol * ||candidate||):
///   * add()/add_columns()/add_complex() -- eager, one vector at a time, by
///     modified Gram-Schmidt with a single reorthogonalisation pass.
///   * stage()/stage_complex() + flush() -- panel mode. A flushed panel is
///     projected against the existing basis by two blocked classical
///     Gram-Schmidt sweeps (GEMM-shaped on the la/simd kernels), then
///     orthonormalised within itself by blocked Householder QR, dropping
///     columns whose R diagonal falls under the deflation threshold. Under
///     the ATMOR_SCALAR_KERNELS escape hatch flush() degrades to the eager
///     MGS path.
class BasisBuilder {
public:
    /// @param dim ambient dimension
    /// @param deflation_tol a candidate is rejected when its orthogonal
    ///        residual falls below deflation_tol * ||candidate||.
    explicit BasisBuilder(int dim, double deflation_tol = 1e-10);

    /// Try to add one vector; returns true if it extended the basis.
    bool add(const Vec& v);

    /// Add every column of m; returns how many survived deflation.
    int add_columns(const Matrix& m);

    /// Add the real and imaginary parts of a complex vector (used for
    /// non-real expansion points; the projector must stay real).
    int add_complex(const ZVec& v);

    /// Queue one vector for the next flush().
    void stage(const Vec& v);

    /// Queue the real part and (when not numerically zero, same rule as
    /// add_complex) the imaginary part for the next flush().
    void stage_complex(const ZVec& v);

    /// Orthonormalise every staged vector against the basis and within the
    /// panel; append the survivors. Returns how many columns were added.
    int flush();

    [[nodiscard]] int dim() const { return dim_; }
    [[nodiscard]] int size() const { return static_cast<int>(basis_.size()); }
    [[nodiscard]] int staged() const { return static_cast<int>(staged_.size()); }

    /// Basis as a dim x size matrix with orthonormal columns. Requires every
    /// staged vector to have been flushed.
    [[nodiscard]] Matrix matrix() const;

private:
    int flush_chunk(std::vector<Vec> panel, std::vector<double> orig);

    int dim_;
    double tol_;
    std::vector<Vec> basis_;
    std::vector<Vec> staged_;
};

/// Orthonormalise the columns of m (rank-revealing); returns dim x r matrix.
Matrix orthonormalize_columns(const Matrix& m, double deflation_tol = 1e-10);

}  // namespace atmor::la
