// Solver backends with a factorization cache keyed by (operator, shift).
//
// Every resolvent solve (sI - G1)^{-1} b, NORM moment solve, and implicit-
// integrator Newton step in the pipeline goes through a SolverBackend. The
// backend factors (shift*I - A) at most once per (operator identity, shift)
// and replays the factors for every subsequent right-hand side -- the
// "factor once per expansion point / Newton Jacobian, solve thousands of
// times" pattern the associated-transform method depends on.
//
// Backends are THREAD-SAFE: the cache map sits behind a shared mutex (solves
// replaying a cached factorisation only take the read side) and the stats
// counters are atomics, so the parallel fan-out layers (multipoint moments,
// frequency sweeps, batched transients) can share one backend across worker
// threads. Factorization handles themselves are immutable after construction
// and safe to solve against concurrently.
//
// Right-hand sides come in two granularities: single vectors, and n x k
// BLOCKS that make one pass over the factors per block (see SparseLu /
// LuFactorization blocked solves) -- column c of a block solve is bit-for-bit
// identical to the corresponding single-RHS solve.
//
// Three interchangeable backends:
//  * DenseLuBackend  -- dense partial-pivot LU; O(n^3) per (op, shift).
//  * SparseLuBackend -- sparse LU (sparse/splu.hpp); O(nnz + fill) per
//                       (op, shift), the sparse-first hot path.
//  * SchurBackend    -- one dense complex Schur factorisation per OPERATOR;
//                       every shift is then a triangular backsolve. Best for
//                       dense systems probed at many shifts (transfer-function
//                       sweeps, associated-transform moment chains).
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "la/matrix.hpp"
#include "la/operator.hpp"

namespace atmor::la {

class ComplexSchur;

/// A reusable factorisation of (shift*I - A). Immutable: concurrent solve()
/// calls from multiple threads are safe.
class Factorization {
public:
    virtual ~Factorization() = default;
    [[nodiscard]] virtual int dim() const = 0;
    /// Solve (shift*I - A) x = b.
    [[nodiscard]] virtual ZVec solve(const ZVec& b) const = 0;
    /// Real solve; requires the factorisation's shift to be real.
    [[nodiscard]] virtual Vec solve(const Vec& b) const = 0;
    /// Blocked multi-RHS solves (B is n x k). The default forwards column by
    /// column; LU-based factorisations override with a single-pass blocked
    /// backsolve. Column c always equals solve(B.col(c)) bit for bit.
    [[nodiscard]] virtual ZMatrix solve(const ZMatrix& b) const;
    [[nodiscard]] virtual Matrix solve(const Matrix& b) const;
    /// Cheap conditioning probe in [0, 1]: min/max pivot magnitude (LU) or
    /// normalised spectral distance of the shift (Schur). Values near 0 mean
    /// the shifted matrix is numerically singular and solves are garbage.
    [[nodiscard]] virtual double pivot_ratio() const = 0;
};

struct SolverStats {
    long factorizations = 0;  ///< total factor work (cached-path misses + factorize())
    long cache_misses = 0;    ///< cached-path lookups that had to factor
    long cache_hits = 0;      ///< lookups served from a cached factorisation
    long solves = 0;          ///< total right-hand sides solved
    /// Largest dimension factorised so far. The serving layer asserts the
    /// online path stays at reduced order with this (a full-order
    /// factorisation sneaking into a warm path is a bug, not a slowdown).
    int max_factor_dim = 0;
};

class SolverBackend {
public:
    /// @param max_cached bound on live cache entries (FIFO eviction). Live
    ///        shared_ptr handles returned by factorization() stay valid after
    ///        eviction; only the cache slot is reclaimed.
    explicit SolverBackend(std::size_t max_cached = 16);
    virtual ~SolverBackend() = default;

    /// Cached factorisation of (shift*I - A); factors on first use. Safe to
    /// call concurrently: lookups take a shared lock, and a miss factors
    /// outside any lock (two threads racing on the same new key both factor;
    /// the first insertion wins and both receive the same handle).
    [[nodiscard]] std::shared_ptr<const Factorization> factorization(const LinearOperator& a,
                                                                     Complex shift);

    /// Uncached factorisation of (shift*I - A). For throwaway operators that
    /// will never be looked up again (e.g. per-refactor Newton Jacobians):
    /// the caller keeps the handle, and the cache is not polluted with
    /// entries whose operator ids never recur.
    [[nodiscard]] std::shared_ptr<const Factorization> factorize(const LinearOperator& a,
                                                                 Complex shift);

    /// Solve (shift*I - A) x = b through the cache.
    [[nodiscard]] ZVec solve_shifted(const LinearOperator& a, Complex shift, const ZVec& b);
    [[nodiscard]] Vec solve_shifted(const LinearOperator& a, double shift, const Vec& b);

    /// Blocked multi-RHS solves (shift*I - A) X = B through the cache; one
    /// factor-pass per block. Counts B.cols() towards stats().solves.
    [[nodiscard]] ZMatrix solve_shifted(const LinearOperator& a, Complex shift,
                                        const ZMatrix& b);
    [[nodiscard]] Matrix solve_shifted(const LinearOperator& a, double shift, const Matrix& b);

    /// Solve A x = b (factors the shift-0 resolvent and negates).
    [[nodiscard]] Vec solve(const LinearOperator& a, const Vec& b);

    /// Snapshot of the counters (atomics read individually; a snapshot taken
    /// while other threads solve is approximate but never torn per-field).
    [[nodiscard]] SolverStats stats() const;
    void clear_cache();
    [[nodiscard]] std::size_t cached_count() const;
    [[nodiscard]] virtual const char* name() const = 0;

protected:
    /// Factor (shift*I - A) from scratch (cache miss path). Must be safe to
    /// call concurrently for different (a, shift) pairs.
    [[nodiscard]] virtual std::shared_ptr<const Factorization> factor(const LinearOperator& a,
                                                                      Complex shift) = 0;

    [[nodiscard]] std::size_t max_cached() const { return max_cached_; }

private:
    struct Key {
        std::uint64_t id;
        double re;
        double im;
        bool operator==(const Key& o) const { return id == o.id && re == o.re && im == o.im; }
    };
    struct KeyHash {
        std::size_t operator()(const Key& k) const;
    };

    void note_factor_dim(int dim);

    mutable std::shared_mutex cache_mutex_;
    std::unordered_map<Key, std::shared_ptr<const Factorization>, KeyHash> cache_;
    std::deque<Key> insertion_order_;
    std::size_t max_cached_;
    std::atomic<long> factorizations_{0};
    std::atomic<long> cache_misses_{0};
    std::atomic<long> cache_hits_{0};
    std::atomic<long> solves_{0};
    std::atomic<int> max_factor_dim_{0};
};

/// Dense LU per (operator, shift). Real shifts factor in real arithmetic.
class DenseLuBackend final : public SolverBackend {
public:
    using SolverBackend::SolverBackend;
    [[nodiscard]] const char* name() const override { return "dense-lu"; }

protected:
    [[nodiscard]] std::shared_ptr<const Factorization> factor(const LinearOperator& a,
                                                              Complex shift) override;
};

/// Sparse LU per (operator, shift); operators without a CSR view are
/// converted once per factorisation (dense fallback preserved).
class SparseLuBackend final : public SolverBackend {
public:
    using SolverBackend::SolverBackend;
    [[nodiscard]] const char* name() const override { return "sparse-lu"; }

protected:
    [[nodiscard]] std::shared_ptr<const Factorization> factor(const LinearOperator& a,
                                                              Complex shift) override;
};

/// One complex Schur decomposition per operator; shifts are triangular
/// backsolves against the shared factors.
class SchurBackend final : public SolverBackend {
public:
    using SolverBackend::SolverBackend;
    [[nodiscard]] const char* name() const override { return "schur"; }

    /// The per-operator Schur factors (shared with AssociatedTransform so the
    /// Kronecker-structured solvers reuse the same decomposition).
    [[nodiscard]] std::shared_ptr<const ComplexSchur> schur_for(const LinearOperator& a);

    /// Number of distinct operators factorised (each one dense O(n^3) work).
    [[nodiscard]] long schur_count() const { return schur_count_.load(); }

protected:
    [[nodiscard]] std::shared_ptr<const Factorization> factor(const LinearOperator& a,
                                                              Complex shift) override;

private:
    // Bounded like the base cache (FIFO); live shared_ptr handles survive
    // eviction, only the slot is reclaimed. Guarded by schur_mutex_.
    std::mutex schur_mutex_;
    std::unordered_map<std::uint64_t, std::shared_ptr<const ComplexSchur>> schur_;
    std::deque<std::uint64_t> schur_order_;
    std::atomic<long> schur_count_{0};
};

/// Conditioning of (shift*I - A) through the backend's cache: the cached
/// factorization's pivot_ratio(), or 0.0 when the factorisation breaks down
/// on exact singularity. Guards call this before moment generation; the
/// factorisation stays cached, so the probe also warms the solve path.
double shift_pivot_ratio(SolverBackend& backend, const LinearOperator& a, Complex shift);

/// Heuristic default for factor-and-solve workloads (Newton Jacobians,
/// resolvent chains): sparse LU when a CSR view exists, dense LU otherwise.
std::shared_ptr<SolverBackend> make_default_backend(const LinearOperator& a);

/// Heuristic default for many-shift resolvent workloads: sparse LU when a CSR
/// view exists, Schur otherwise.
std::shared_ptr<SolverBackend> make_resolvent_backend(const LinearOperator& a);

}  // namespace atmor::la
