#include "la/qr.hpp"

#include <cmath>

#include "util/check.hpp"

namespace atmor::la {

namespace {

/// Compute a Householder reflector for x (length len): returns beta and
/// overwrites x with v (v[0] = 1 implicitly stored from index 1).
/// After application, H x = (norm, 0, ..., 0) with H = I - beta v v^T.
double make_householder(double* x, int len) {
    if (len <= 1) return 0.0;
    double sigma = 0.0;
    for (int i = 1; i < len; ++i) sigma += x[i] * x[i];
    if (sigma == 0.0) {
        return 0.0;  // already in e1 direction
    }
    const double alpha = x[0];
    const double mu = std::sqrt(alpha * alpha + sigma);
    double v0 = (alpha <= 0.0) ? alpha - mu : -sigma / (alpha + mu);
    const double beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
    // Normalise so v[0] = 1.
    for (int i = 1; i < len; ++i) x[i] /= v0;
    x[0] = mu;  // H x = +||x|| e1 with this construction, so R_kk = mu > 0
    return beta;
}

}  // namespace

QrFactorization::QrFactorization(Matrix a) : qr_(std::move(a)) {
    const int m = qr_.rows(), n = qr_.cols();
    ATMOR_REQUIRE(m >= n, "QR requires rows >= cols, got " << m << "x" << n);
    beta_.assign(static_cast<std::size_t>(n), 0.0);

    Vec col(static_cast<std::size_t>(m));
    for (int k = 0; k < n; ++k) {
        const int len = m - k;
        for (int i = 0; i < len; ++i) col[static_cast<std::size_t>(i)] = qr_(k + i, k);
        const double beta = make_householder(col.data(), len);
        beta_[static_cast<std::size_t>(k)] = beta;
        // Store v (excluding implicit 1) below the diagonal, R entry on it.
        qr_(k, k) = col[0];
        for (int i = 1; i < len; ++i) qr_(k + i, k) = col[static_cast<std::size_t>(i)];
        if (beta == 0.0) continue;
        // Apply reflector to remaining columns.
        for (int j = k + 1; j < n; ++j) {
            double w = qr_(k, j);
            for (int i = 1; i < len; ++i) w += qr_(k + i, k) * qr_(k + i, j);
            w *= beta;
            qr_(k, j) -= w;
            for (int i = 1; i < len; ++i) qr_(k + i, j) -= w * qr_(k + i, k);
        }
    }
}

Matrix QrFactorization::thin_q() const {
    const int m = qr_.rows(), n = qr_.cols();
    // Start from the first n columns of I and apply reflectors in reverse.
    Matrix q(m, n);
    for (int j = 0; j < n; ++j) q(j, j) = 1.0;
    for (int k = n - 1; k >= 0; --k) {
        const double beta = beta_[static_cast<std::size_t>(k)];
        if (beta == 0.0) continue;
        for (int j = 0; j < n; ++j) {
            double w = q(k, j);
            for (int i = k + 1; i < m; ++i) w += qr_(i, k) * q(i, j);
            w *= beta;
            q(k, j) -= w;
            for (int i = k + 1; i < m; ++i) q(i, j) -= w * qr_(i, k);
        }
    }
    return q;
}

Matrix QrFactorization::r() const {
    const int n = qr_.cols();
    Matrix r(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = i; j < n; ++j) r(i, j) = qr_(i, j);
    return r;
}

void QrFactorization::apply_qt(Vec& v) const {
    const int m = qr_.rows(), n = qr_.cols();
    ATMOR_REQUIRE(static_cast<int>(v.size()) == m, "apply_qt: size mismatch");
    for (int k = 0; k < n; ++k) {
        const double beta = beta_[static_cast<std::size_t>(k)];
        if (beta == 0.0) continue;
        double w = v[static_cast<std::size_t>(k)];
        for (int i = k + 1; i < m; ++i) w += qr_(i, k) * v[static_cast<std::size_t>(i)];
        w *= beta;
        v[static_cast<std::size_t>(k)] -= w;
        for (int i = k + 1; i < m; ++i) v[static_cast<std::size_t>(i)] -= w * qr_(i, k);
    }
}

Vec QrFactorization::solve_least_squares(Vec b) const {
    const int n = qr_.cols();
    apply_qt(b);
    Vec x(static_cast<std::size_t>(n));
    for (int i = n - 1; i >= 0; --i) {
        double acc = b[static_cast<std::size_t>(i)];
        for (int j = i + 1; j < n; ++j) acc -= qr_(i, j) * x[static_cast<std::size_t>(j)];
        const double d = qr_(i, i);
        ATMOR_CHECK(d != 0.0, "rank-deficient least squares");
        x[static_cast<std::size_t>(i)] = acc / d;
    }
    return x;
}

int numerical_rank(Matrix a, double rel_tol) {
    const int m = a.rows(), n = a.cols();
    const int kmax = std::min(m, n);
    std::vector<double> colnorm(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
        double s = 0.0;
        for (int i = 0; i < m; ++i) s += a(i, j) * a(i, j);
        colnorm[static_cast<std::size_t>(j)] = s;
    }
    double r00 = 0.0;
    int rank = 0;
    Vec col(static_cast<std::size_t>(m));
    for (int k = 0; k < kmax; ++k) {
        // Pivot: column with largest remaining norm.
        int piv = k;
        for (int j = k + 1; j < n; ++j)
            if (colnorm[static_cast<std::size_t>(j)] > colnorm[static_cast<std::size_t>(piv)])
                piv = j;
        if (piv != k) {
            for (int i = 0; i < m; ++i) std::swap(a(i, k), a(i, piv));
            std::swap(colnorm[static_cast<std::size_t>(k)], colnorm[static_cast<std::size_t>(piv)]);
        }
        const int len = m - k;
        for (int i = 0; i < len; ++i) col[static_cast<std::size_t>(i)] = a(k + i, k);
        const double beta = make_householder(col.data(), len);
        const double rkk = std::abs(col[0]);
        if (k == 0) r00 = rkk;
        if (rkk <= rel_tol * (r00 > 0.0 ? r00 : 1.0)) break;
        ++rank;
        a(k, k) = col[0];
        for (int i = 1; i < len; ++i) a(k + i, k) = col[static_cast<std::size_t>(i)];
        for (int j = k + 1; j < n; ++j) {
            double w = a(k, j);
            for (int i = 1; i < len; ++i) w += a(k + i, k) * a(k + i, j);
            w *= beta;
            a(k, j) -= w;
            for (int i = 1; i < len; ++i) a(k + i, j) -= w * a(k + i, k);
            colnorm[static_cast<std::size_t>(j)] -= a(k, j) * a(k, j);
            if (colnorm[static_cast<std::size_t>(j)] < 0.0) colnorm[static_cast<std::size_t>(j)] = 0.0;
        }
    }
    return rank;
}

}  // namespace atmor::la
