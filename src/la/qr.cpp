#include "la/qr.hpp"

#include <algorithm>
#include <cmath>

#include "la/simd.hpp"
#include "util/check.hpp"

namespace atmor::la {

namespace {

/// Compute a Householder reflector for x (length len): returns beta and
/// overwrites x with v (v[0] = 1 implicitly stored from index 1).
/// After application, H x = (norm, 0, ..., 0) with H = I - beta v v^T.
double make_householder(double* x, int len) {
    if (len <= 1) return 0.0;
    double sigma = 0.0;
    for (int i = 1; i < len; ++i) sigma += x[i] * x[i];
    if (sigma == 0.0) {
        return 0.0;  // already in e1 direction
    }
    const double alpha = x[0];
    const double mu = std::sqrt(alpha * alpha + sigma);
    double v0 = (alpha <= 0.0) ? alpha - mu : -sigma / (alpha + mu);
    const double beta = 2.0 * v0 * v0 / (sigma + v0 * v0);
    // Normalise so v[0] = 1.
    for (int i = 1; i < len; ++i) x[i] /= v0;
    x[0] = mu;  // H x = +||x|| e1 with this construction, so R_kk = mu > 0
    return beta;
}

/// Apply the compact-WY block of panel [k0, k0+nb) -- reflectors V stored
/// below the diagonal of vmat's panel columns (unit diagonal implicit), T
/// upper triangular -- to columns [c0, c1) of c:
///
///   c <- c - V op(T) (V^T c),  op(T) = T^T when applying Q^T (factorization
///                              trailing update), T when applying Q (thin_q).
///
/// Both V^T c and the final rank-nb update walk c row by row, so every kernel
/// call runs over a contiguous (c1 - c0)-wide row: two GEMM-shaped sweeps
/// around a tiny nb x nb triangular solve-like recombination. vmat and c may
/// alias as long as the column ranges are disjoint.
void apply_compact_wy(const Matrix& vmat, int k0, int nb, const Matrix& t, bool transpose_t,
                      Matrix& c, int c0, int c1) {
    const int m = vmat.rows();
    const int nc = c1 - c0;
    if (nc <= 0 || nb <= 0) return;
    Matrix w(nb, nc);
    // W = V^T C (rows k0..m of C).
    for (int i = k0; i < m; ++i) {
        const double* ci = c.row_ptr(i) + c0;
        const int jmax = std::min(i - k0, nb - 1);
        for (int j = 0; j <= jmax; ++j) {
            const double vij = (i == k0 + j) ? 1.0 : vmat(i, k0 + j);
            if (vij != 0.0) simd::axpy(vij, ci, w.row_ptr(j), static_cast<std::size_t>(nc));
        }
    }
    // W <- op(T) W, exploiting T's upper-triangular shape in place.
    if (transpose_t) {
        // W_new(j) = sum_{l <= j} T(l, j) W(l): descending j keeps W(l) old.
        for (int j = nb - 1; j >= 0; --j) {
            simd::scale(t(j, j), w.row_ptr(j), static_cast<std::size_t>(nc));
            for (int l = 0; l < j; ++l)
                simd::axpy(t(l, j), w.row_ptr(l), w.row_ptr(j), static_cast<std::size_t>(nc));
        }
    } else {
        // W_new(r) = sum_{l >= r} T(r, l) W(l): ascending r keeps W(l) old.
        for (int r = 0; r < nb; ++r) {
            simd::scale(t(r, r), w.row_ptr(r), static_cast<std::size_t>(nc));
            for (int l = r + 1; l < nb; ++l)
                simd::axpy(t(r, l), w.row_ptr(l), w.row_ptr(r), static_cast<std::size_t>(nc));
        }
    }
    // C -= V W.
    for (int i = k0; i < m; ++i) {
        double* ci = c.row_ptr(i) + c0;
        const int jmax = std::min(i - k0, nb - 1);
        for (int j = 0; j <= jmax; ++j) {
            const double vij = (i == k0 + j) ? 1.0 : vmat(i, k0 + j);
            if (vij != 0.0) simd::axpy(-vij, w.row_ptr(j), ci, static_cast<std::size_t>(nc));
        }
    }
}

}  // namespace

QrFactorization::QrFactorization(Matrix a) : qr_(std::move(a)) {
    const int m = qr_.rows(), n = qr_.cols();
    ATMOR_REQUIRE(m >= n, "QR requires rows >= cols, got " << m << "x" << n);
    beta_.assign(static_cast<std::size_t>(n), 0.0);

    Vec col(static_cast<std::size_t>(m));
    for (int k0 = 0; k0 < n; k0 += kPanel) {
        const int k1 = std::min(n, k0 + kPanel);
        const int nb = k1 - k0;
        // Factor the panel column by column (level-2 work confined to nb
        // columns), applying each reflector eagerly within the panel only.
        // The rank-1 application runs as two row sweeps -- w = beta V^T C
        // then C -= v w^T -- so every kernel call is contiguous in the
        // row-major storage instead of striding down a column.
        Vec w(static_cast<std::size_t>(kPanel));
        for (int k = k0; k < k1; ++k) {
            const int len = m - k;
            for (int i = 0; i < len; ++i) col[static_cast<std::size_t>(i)] = qr_(k + i, k);
            const double beta = make_householder(col.data(), len);
            beta_[static_cast<std::size_t>(k)] = beta;
            // Store v (excluding implicit 1) below the diagonal, R entry on it.
            qr_(k, k) = col[0];
            for (int i = 1; i < len; ++i) qr_(k + i, k) = col[static_cast<std::size_t>(i)];
            const int ncp = k1 - (k + 1);
            if (beta == 0.0 || ncp <= 0) continue;
            std::fill(w.begin(), w.begin() + ncp, 0.0);
            simd::axpy(1.0, qr_.row_ptr(k) + k + 1, w.data(), static_cast<std::size_t>(ncp));
            for (int i = 1; i < len; ++i)
                simd::axpy(col[static_cast<std::size_t>(i)], qr_.row_ptr(k + i) + k + 1,
                           w.data(), static_cast<std::size_t>(ncp));
            simd::scale(beta, w.data(), static_cast<std::size_t>(ncp));
            simd::axpy(-1.0, w.data(), qr_.row_ptr(k) + k + 1, static_cast<std::size_t>(ncp));
            for (int i = 1; i < len; ++i)
                simd::axpy(-col[static_cast<std::size_t>(i)], w.data(),
                           qr_.row_ptr(k + i) + k + 1, static_cast<std::size_t>(ncp));
        }
        // Accumulate the panel's T factor; the trailing columns then see the
        // whole panel at once as C - V (T^T (V^T C)).
        t_.push_back(build_t(k0, nb));
        if (k1 < n) apply_compact_wy(qr_, k0, nb, t_.back(), /*transpose_t=*/true, qr_, k1, n);
    }
}

Matrix QrFactorization::build_t(int k0, int nb) const {
    // LAPACK larft forward recurrence: T(j,j) = beta_j and
    // T(0:j, j) = -beta_j T(0:j, 0:j) (V^T v_j). A zero beta leaves the whole
    // column zero, which drops that reflector from the block product.
    const int m = qr_.rows();
    Matrix t(nb, nb);
    Vec w(static_cast<std::size_t>(nb));
    for (int j = 0; j < nb; ++j) {
        const double bj = beta_[static_cast<std::size_t>(k0 + j)];
        t(j, j) = bj;
        if (bj == 0.0) continue;
        // w(l) = v_l^T v_j over the rows where v_j is nonzero (k0+j downward;
        // v_j's implicit unit entry pairs with V(k0+j, l)). Accumulated as a
        // row sweep -- each i contributes v_j(i) times a contiguous slice of
        // row i -- instead of j strided column dots.
        for (int l = 0; l < j; ++l) w[static_cast<std::size_t>(l)] = qr_(k0 + j, k0 + l);
        for (int i = k0 + j + 1; i < m; ++i)
            simd::axpy(qr_(i, k0 + j), qr_.row_ptr(i) + k0, w.data(),
                       static_cast<std::size_t>(j));
        for (int r = 0; r < j; ++r) {
            double s = 0.0;
            for (int l = r; l < j; ++l) s += t(r, l) * w[static_cast<std::size_t>(l)];
            t(r, j) = -bj * s;
        }
    }
    return t;
}

Matrix QrFactorization::thin_q() const {
    const int m = qr_.rows(), n = qr_.cols();
    // Start from the first n columns of I and apply the panel blocks in
    // reverse, each as Q <- (I - V T V^T) Q over the panel's row range.
    Matrix q(m, n);
    for (int j = 0; j < n; ++j) q(j, j) = 1.0;
    for (int p = static_cast<int>(t_.size()) - 1; p >= 0; --p) {
        const int k0 = p * kPanel;
        apply_compact_wy(qr_, k0, t_[static_cast<std::size_t>(p)].rows(),
                         t_[static_cast<std::size_t>(p)], /*transpose_t=*/false, q, 0, n);
    }
    return q;
}

Matrix QrFactorization::r() const {
    const int n = qr_.cols();
    Matrix r(n, n);
    for (int i = 0; i < n; ++i)
        for (int j = i; j < n; ++j) r(i, j) = qr_(i, j);
    return r;
}

void QrFactorization::apply_qt(Vec& v) const {
    const int m = qr_.rows(), n = qr_.cols();
    ATMOR_REQUIRE(static_cast<int>(v.size()) == m, "apply_qt: size mismatch");
    for (int k = 0; k < n; ++k) {
        const double beta = beta_[static_cast<std::size_t>(k)];
        if (beta == 0.0) continue;
        double w = v[static_cast<std::size_t>(k)];
        for (int i = k + 1; i < m; ++i) w += qr_(i, k) * v[static_cast<std::size_t>(i)];
        w *= beta;
        v[static_cast<std::size_t>(k)] -= w;
        for (int i = k + 1; i < m; ++i) v[static_cast<std::size_t>(i)] -= w * qr_(i, k);
    }
}

Vec QrFactorization::solve_least_squares(Vec b) const {
    const int n = qr_.cols();
    apply_qt(b);
    Vec x(static_cast<std::size_t>(n));
    for (int i = n - 1; i >= 0; --i) {
        double acc = b[static_cast<std::size_t>(i)];
        for (int j = i + 1; j < n; ++j) acc -= qr_(i, j) * x[static_cast<std::size_t>(j)];
        const double d = qr_(i, i);
        ATMOR_CHECK(d != 0.0, "rank-deficient least squares");
        x[static_cast<std::size_t>(i)] = acc / d;
    }
    return x;
}

int numerical_rank(Matrix a, double rel_tol) {
    const int m = a.rows(), n = a.cols();
    const int kmax = std::min(m, n);
    std::vector<double> colnorm(static_cast<std::size_t>(n));
    for (int j = 0; j < n; ++j) {
        double s = 0.0;
        for (int i = 0; i < m; ++i) s += a(i, j) * a(i, j);
        colnorm[static_cast<std::size_t>(j)] = s;
    }
    double r00 = 0.0;
    int rank = 0;
    Vec col(static_cast<std::size_t>(m));
    for (int k = 0; k < kmax; ++k) {
        // Pivot: column with largest remaining norm.
        int piv = k;
        for (int j = k + 1; j < n; ++j)
            if (colnorm[static_cast<std::size_t>(j)] > colnorm[static_cast<std::size_t>(piv)])
                piv = j;
        if (piv != k) {
            for (int i = 0; i < m; ++i) std::swap(a(i, k), a(i, piv));
            std::swap(colnorm[static_cast<std::size_t>(k)], colnorm[static_cast<std::size_t>(piv)]);
        }
        const int len = m - k;
        for (int i = 0; i < len; ++i) col[static_cast<std::size_t>(i)] = a(k + i, k);
        const double beta = make_householder(col.data(), len);
        const double rkk = std::abs(col[0]);
        if (k == 0) r00 = rkk;
        if (rkk <= rel_tol * (r00 > 0.0 ? r00 : 1.0)) break;
        ++rank;
        a(k, k) = col[0];
        for (int i = 1; i < len; ++i) a(k + i, k) = col[static_cast<std::size_t>(i)];
        for (int j = k + 1; j < n; ++j) {
            double w = a(k, j);
            for (int i = 1; i < len; ++i) w += a(k + i, k) * a(k + i, j);
            w *= beta;
            a(k, j) -= w;
            for (int i = 1; i < len; ++i) a(k + i, j) -= w * a(k + i, k);
            colnorm[static_cast<std::size_t>(j)] -= a(k, j) * a(k, j);
            if (colnorm[static_cast<std::size_t>(j)] < 0.0) colnorm[static_cast<std::size_t>(j)] = 0.0;
        }
    }
    return rank;
}

}  // namespace atmor::la
