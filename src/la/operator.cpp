#include "la/operator.hpp"

#include <atomic>

#include "util/check.hpp"

namespace atmor::la {

namespace {
std::atomic<std::uint64_t> next_operator_id{1};
}  // namespace

LinearOperator::LinearOperator() : id_(next_operator_id.fetch_add(1)) {}

DenseOperator::DenseOperator(std::shared_ptr<const Matrix> m) : m_(std::move(m)) {
    ATMOR_REQUIRE(m_ != nullptr, "DenseOperator: null matrix");
}

DenseOperator::DenseOperator(Matrix m)
    : DenseOperator(std::make_shared<const Matrix>(std::move(m))) {}

SparseOperator::SparseOperator(std::shared_ptr<const sparse::CsrMatrix> m) : m_(std::move(m)) {
    ATMOR_REQUIRE(m_ != nullptr, "SparseOperator: null matrix");
}

SparseOperator::SparseOperator(sparse::CsrMatrix m)
    : SparseOperator(std::make_shared<const sparse::CsrMatrix>(std::move(m))) {}

ShiftedOperator::ShiftedOperator(std::shared_ptr<const LinearOperator> a, Complex shift)
    : a_(std::move(a)), shift_(shift) {
    ATMOR_REQUIRE(a_ != nullptr, "ShiftedOperator: null operator");
    ATMOR_REQUIRE(a_->square(), "ShiftedOperator: base operator must be square");
}

Vec ShiftedOperator::apply(const Vec& x) const {
    ATMOR_REQUIRE(shift_.imag() == 0.0,
                  "ShiftedOperator: real apply requires a real shift");
    Vec y = a_->apply(x);
    const double s = shift_.real();
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = s * x[i] - y[i];
    return y;
}

ZVec ShiftedOperator::apply(const ZVec& x) const {
    ZVec y = a_->apply(x);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] = shift_ * x[i] - y[i];
    return y;
}

Matrix ShiftedOperator::to_dense() const {
    ATMOR_REQUIRE(shift_.imag() == 0.0,
                  "ShiftedOperator: dense materialisation requires a real shift");
    Matrix m = a_->to_dense();
    for (int i = 0; i < m.rows(); ++i)
        for (int j = 0; j < m.cols(); ++j) m(i, j) = -m(i, j);
    for (int i = 0; i < m.rows(); ++i) m(i, i) += shift_.real();
    return m;
}

std::shared_ptr<const DenseOperator> make_dense_operator(Matrix m) {
    return std::make_shared<const DenseOperator>(std::move(m));
}

std::shared_ptr<const SparseOperator> make_sparse_operator(sparse::CsrMatrix m) {
    return std::make_shared<const SparseOperator>(std::move(m));
}

}  // namespace atmor::la
