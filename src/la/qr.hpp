// Blocked Householder QR factorisation (real, compact-WY form), thin-Q
// extraction, least squares and a rank-revealing column-pivoted variant used
// for basis deflation diagnostics.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace atmor::la {

/// Householder QR of an m x n matrix (m >= n): A = Q R.
///
/// The factorisation is blocked: columns are processed in panels of kPanel
/// reflectors, each panel's product H_k0 ... H_k1-1 = I - V T V^T held in
/// compact-WY form (unit-lower V below the diagonal, small upper-triangular
/// T). Trailing updates and thin-Q assembly apply whole panels as two
/// GEMM-shaped sweeps on the la/simd kernels instead of one reflector at a
/// time. The stored reflectors are the classical ones, so the per-vector
/// paths (apply_qt, solve_least_squares) read the same representation.
class QrFactorization {
public:
    explicit QrFactorization(Matrix a);

    /// Thin Q (m x n) with orthonormal columns.
    [[nodiscard]] Matrix thin_q() const;

    /// Upper-triangular R (n x n).
    [[nodiscard]] Matrix r() const;

    /// Least-squares solution of min ||A x - b||_2.
    [[nodiscard]] Vec solve_least_squares(Vec b) const;

    [[nodiscard]] int rows() const { return qr_.rows(); }
    [[nodiscard]] int cols() const { return qr_.cols(); }

    /// Compact-WY panel width.
    static constexpr int kPanel = 32;

private:
    void apply_qt(Vec& v) const;  // v <- Q^T v

    /// T factor of the panel starting at column k0 (LAPACK larft recurrence).
    [[nodiscard]] Matrix build_t(int k0, int nb) const;

    Matrix qr_;              // Householder vectors below diagonal, R on/above
    Vec beta_;               // Householder scalars
    std::vector<Matrix> t_;  // per-panel compact-WY T factors
};

/// Column-pivoted QR rank estimate: number of diagonal |R_ii| > tol * |R_00|.
int numerical_rank(Matrix a, double rel_tol);

}  // namespace atmor::la
