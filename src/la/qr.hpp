// Householder QR factorisation (real), thin-Q extraction, least squares and
// rank-revealing column-pivoted variant used for basis deflation diagnostics.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace atmor::la {

/// Householder QR of an m x n matrix (m >= n): A = Q R.
class QrFactorization {
public:
    explicit QrFactorization(Matrix a);

    /// Thin Q (m x n) with orthonormal columns.
    [[nodiscard]] Matrix thin_q() const;

    /// Upper-triangular R (n x n).
    [[nodiscard]] Matrix r() const;

    /// Least-squares solution of min ||A x - b||_2.
    [[nodiscard]] Vec solve_least_squares(Vec b) const;

    [[nodiscard]] int rows() const { return qr_.rows(); }
    [[nodiscard]] int cols() const { return qr_.cols(); }

private:
    void apply_qt(Vec& v) const;  // v <- Q^T v

    Matrix qr_;        // Householder vectors below diagonal, R on/above
    Vec beta_;         // Householder scalars
};

/// Column-pivoted QR rank estimate: number of diagonal |R_ii| > tol * |R_00|.
int numerical_rank(Matrix a, double rel_tol);

}  // namespace atmor::la
