#include "la/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__AVX2__) && defined(__FMA__)
#define ATMOR_SIMD_AVX2 1
#include <immintrin.h>
#endif

// Keep the scalar reference kernels scalar even at -O3: without this the
// elementwise loops auto-vectorize and the "scalar" column of the kernel
// bench would be measuring the same code as the vectorized tier.
#if defined(__GNUC__) && !defined(__clang__)
#define ATMOR_NO_VECTORIZE \
    __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define ATMOR_NO_VECTORIZE
#endif

namespace atmor::la::simd {

namespace {

std::atomic<bool>& forced_flag() {
    static std::atomic<bool> forced = [] {
        const char* env = std::getenv("ATMOR_SCALAR_KERNELS");
        return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == '\0');
    }();
    return forced;
}

}  // namespace

bool scalar_forced() { return forced_flag().load(std::memory_order_relaxed); }

void force_scalar(bool on) { forced_flag().store(on, std::memory_order_relaxed); }

const char* compiled_level() {
#ifdef ATMOR_SIMD_AVX2
    return "avx2";
#else
    return "omp-simd";
#endif
}

const char* active_level() { return scalar_forced() ? "scalar" : compiled_level(); }

// ---------------------------------------------------------------------------
// Scalar reference tier.
// ---------------------------------------------------------------------------
namespace scalar {

ATMOR_NO_VECTORIZE double dot(const double* a, const double* b, std::size_t n) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
    return s;
}

ATMOR_NO_VECTORIZE double nrm2sq(const double* a, std::size_t n) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += a[i] * a[i];
    return s;
}

ATMOR_NO_VECTORIZE void axpy(double alpha, const double* x, double* y, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

ATMOR_NO_VECTORIZE void scale(double alpha, double* x, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

ATMOR_NO_VECTORIZE double spmv_row(const double* vals, const int* cols, std::size_t nnz,
                                   const double* x) {
    double s = 0.0;
    for (std::size_t k = 0; k < nnz; ++k) s += vals[k] * x[static_cast<std::size_t>(cols[k])];
    return s;
}

ATMOR_NO_VECTORIZE void zaxpy(Complex alpha, const Complex* x, Complex* y, std::size_t n) {
    const double ar = alpha.real(), ai = alpha.imag();
    const double* xd = reinterpret_cast<const double*>(x);
    double* yd = reinterpret_cast<double*>(y);
    for (std::size_t i = 0; i < n; ++i) {
        const double xr = xd[2 * i], xi = xd[2 * i + 1];
        yd[2 * i] += ar * xr - ai * xi;
        yd[2 * i + 1] += ar * xi + ai * xr;
    }
}

ATMOR_NO_VECTORIZE Complex zspmv_row(const double* vals, const int* cols, std::size_t nnz,
                                     const Complex* x) {
    double re = 0.0, im = 0.0;
    const double* xd = reinterpret_cast<const double*>(x);
    for (std::size_t k = 0; k < nnz; ++k) {
        const std::size_t j = static_cast<std::size_t>(cols[k]);
        re += vals[k] * xd[2 * j];
        im += vals[k] * xd[2 * j + 1];
    }
    return Complex(re, im);
}

}  // namespace scalar

// ---------------------------------------------------------------------------
// Vectorized tier. Reductions use four independent accumulators (combined as
// (s0+s1)+(s2+s3), remainder folded in last) so the fold is reassociated the
// same way on every call; elementwise kernels are plain mul+add per lane,
// which is bit-identical to the scalar reference.
// ---------------------------------------------------------------------------
namespace {

#ifdef ATMOR_SIMD_AVX2

double dot_vec(const double* __restrict__ a, const double* __restrict__ b, std::size_t n) {
    __m256d acc0 = _mm256_setzero_pd();
    __m256d acc1 = _mm256_setzero_pd();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
        acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4), _mm256_loadu_pd(b + i + 4), acc1);
    }
    for (; i + 4 <= n; i += 4)
        acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i), acc0);
    const __m256d acc = _mm256_add_pd(acc0, acc1);
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (; i < n; ++i) s += a[i] * b[i];
    return s;
}

double nrm2sq_vec(const double* __restrict__ a, std::size_t n) { return dot_vec(a, a, n); }

// No FMA here: elementwise kernels must stay bit-identical to the scalar
// reference (the blocked-solve exactness pins depend on it).
void axpy_vec(double alpha, const double* __restrict__ x, double* __restrict__ y,
              std::size_t n) {
    const __m256d va = _mm256_set1_pd(alpha);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
        _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

void scale_vec(double alpha, double* __restrict__ x, std::size_t n) {
    const __m256d va = _mm256_set1_pd(alpha);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm256_storeu_pd(x + i, _mm256_mul_pd(va, _mm256_loadu_pd(x + i)));
    for (; i < n; ++i) x[i] *= alpha;
}

double spmv_row_vec(const double* __restrict__ vals, const int* __restrict__ cols,
                    std::size_t nnz, const double* __restrict__ x) {
    __m256d acc = _mm256_setzero_pd();
    std::size_t k = 0;
    const __m256d ones_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
    for (; k + 4 <= nnz; k += 4) {
        const __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols + k));
        // Masked gather with a zeroed source: same full-lane load as the
        // plain form, but with no uninitialized pass-through operand.
        const __m256d gathered =
            _mm256_mask_i32gather_pd(_mm256_setzero_pd(), x, idx, ones_mask, 8);
        acc = _mm256_fmadd_pd(_mm256_loadu_pd(vals + k), gathered, acc);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, acc);
    double s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for (; k < nnz; ++k) s += vals[k] * x[static_cast<std::size_t>(cols[k])];
    return s;
}

// Complex elementwise axpy with explicit unfused arithmetic: the auto-
// vectorizer's complex-multiply pattern emits vfmaddsub (single-rounding)
// even under -ffp-contract=off, so hand-roll mul / permute / addsub to keep
// each output element exactly fl(y + (fl(ar*xr) -/+ fl(ai*xi))) -- bit-
// identical to the scalar reference.
void zaxpy_vec(Complex alpha, const Complex* __restrict__ x, Complex* __restrict__ y,
               std::size_t n) {
    const double ar = alpha.real(), ai = alpha.imag();
    const double* __restrict__ xd = reinterpret_cast<const double*>(x);
    double* __restrict__ yd = reinterpret_cast<double*>(y);
    const __m256d var = _mm256_set1_pd(ar);
    const __m256d vai = _mm256_set1_pd(ai);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {  // two complex values per 256-bit lane set
        const __m256d xv = _mm256_loadu_pd(xd + 2 * i);
        const __m256d t1 = _mm256_mul_pd(var, xv);                        // ar*xr | ar*xi
        const __m256d t2 = _mm256_mul_pd(vai, _mm256_permute_pd(xv, 5));  // ai*xi | ai*xr
        const __m256d prod = _mm256_addsub_pd(t1, t2);  // even: t1-t2, odd: t1+t2
        _mm256_storeu_pd(yd + 2 * i, _mm256_add_pd(_mm256_loadu_pd(yd + 2 * i), prod));
    }
    for (; i < n; ++i) {
        const double xr = xd[2 * i], xi = xd[2 * i + 1];
        yd[2 * i] += ar * xr - ai * xi;
        yd[2 * i + 1] += ar * xi + ai * xr;
    }
}

#else  // portable omp-simd tier

double dot_vec(const double* __restrict__ a, const double* __restrict__ b, std::size_t n) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    const std::size_t n4 = n & ~static_cast<std::size_t>(3);
    for (std::size_t i = 0; i < n4; i += 4) {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    double s = (s0 + s1) + (s2 + s3);
    for (std::size_t i = n4; i < n; ++i) s += a[i] * b[i];
    return s;
}

double nrm2sq_vec(const double* __restrict__ a, std::size_t n) { return dot_vec(a, a, n); }

void axpy_vec(double alpha, const double* __restrict__ x, double* __restrict__ y,
              std::size_t n) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void scale_vec(double alpha, double* __restrict__ x, std::size_t n) {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double spmv_row_vec(const double* __restrict__ vals, const int* __restrict__ cols,
                    std::size_t nnz, const double* __restrict__ x) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    const std::size_t n4 = nnz & ~static_cast<std::size_t>(3);
    for (std::size_t k = 0; k < n4; k += 4) {
        s0 += vals[k] * x[static_cast<std::size_t>(cols[k])];
        s1 += vals[k + 1] * x[static_cast<std::size_t>(cols[k + 1])];
        s2 += vals[k + 2] * x[static_cast<std::size_t>(cols[k + 2])];
        s3 += vals[k + 3] * x[static_cast<std::size_t>(cols[k + 3])];
    }
    double s = (s0 + s1) + (s2 + s3);
    for (std::size_t k = n4; k < nnz; ++k) s += vals[k] * x[static_cast<std::size_t>(cols[k])];
    return s;
}

// Complex elementwise axpy: interleaved re/im updates, each one mul-add pair.
// Without FMA hardware in this tier the even/odd lane structure auto-
// vectorizes value-preservingly, staying bit-identical to the scalar loop.
void zaxpy_vec(Complex alpha, const Complex* __restrict__ x, Complex* __restrict__ y,
               std::size_t n) {
    const double ar = alpha.real(), ai = alpha.imag();
    const double* __restrict__ xd = reinterpret_cast<const double*>(x);
    double* __restrict__ yd = reinterpret_cast<double*>(y);
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) {
        const double xr = xd[2 * i], xi = xd[2 * i + 1];
        yd[2 * i] += ar * xr - ai * xi;
        yd[2 * i + 1] += ar * xi + ai * xr;
    }
}

#endif  // ATMOR_SIMD_AVX2

// Complex gather reduction: two-way unrolled split re/im accumulators
// (shared by both vector tiers; reductions are tolerance-pinned).
Complex zspmv_row_vec(const double* __restrict__ vals, const int* __restrict__ cols,
                      std::size_t nnz, const Complex* __restrict__ x) {
    double re0 = 0.0, re1 = 0.0, im0 = 0.0, im1 = 0.0;
    const double* __restrict__ xd = reinterpret_cast<const double*>(x);
    const std::size_t n2 = nnz & ~static_cast<std::size_t>(1);
    for (std::size_t k = 0; k < n2; k += 2) {
        const std::size_t j0 = static_cast<std::size_t>(cols[k]);
        const std::size_t j1 = static_cast<std::size_t>(cols[k + 1]);
        re0 += vals[k] * xd[2 * j0];
        im0 += vals[k] * xd[2 * j0 + 1];
        re1 += vals[k + 1] * xd[2 * j1];
        im1 += vals[k + 1] * xd[2 * j1 + 1];
    }
    double re = re0 + re1, im = im0 + im1;
    for (std::size_t k = n2; k < nnz; ++k) {
        const std::size_t j = static_cast<std::size_t>(cols[k]);
        re += vals[k] * xd[2 * j];
        im += vals[k] * xd[2 * j + 1];
    }
    return Complex(re, im);
}

}  // namespace

// ---------------------------------------------------------------------------
// Dispatch.
// ---------------------------------------------------------------------------

double dot(const double* a, const double* b, std::size_t n) {
    return scalar_forced() ? scalar::dot(a, b, n) : dot_vec(a, b, n);
}

double nrm2sq(const double* a, std::size_t n) {
    return scalar_forced() ? scalar::nrm2sq(a, n) : nrm2sq_vec(a, n);
}

void axpy(double alpha, const double* x, double* y, std::size_t n) {
    if (scalar_forced())
        scalar::axpy(alpha, x, y, n);
    else
        axpy_vec(alpha, x, y, n);
}

void scale(double alpha, double* x, std::size_t n) {
    if (scalar_forced())
        scalar::scale(alpha, x, n);
    else
        scale_vec(alpha, x, n);
}

double spmv_row(const double* vals, const int* cols, std::size_t nnz, const double* x) {
    return scalar_forced() ? scalar::spmv_row(vals, cols, nnz, x)
                           : spmv_row_vec(vals, cols, nnz, x);
}

void zaxpy(Complex alpha, const Complex* x, Complex* y, std::size_t n) {
    if (scalar_forced())
        scalar::zaxpy(alpha, x, y, n);
    else
        zaxpy_vec(alpha, x, y, n);
}

Complex zspmv_row(const double* vals, const int* cols, std::size_t nnz, const Complex* x) {
    return scalar_forced() ? scalar::zspmv_row(vals, cols, nnz, x)
                           : zspmv_row_vec(vals, cols, nnz, x);
}

}  // namespace atmor::la::simd
