// One-sided Jacobi SVD. Small/medium dense matrices only -- used for
// deflation diagnostics, gramian-based order selection (paper Remark 1:
// "automatic selection of moment numbers ... can utilize the Hankel singular
// values"), and test oracles.
#pragma once

#include <vector>

#include "la/matrix.hpp"

namespace atmor::la {

struct SvdResult {
    Matrix u;        ///< m x r left singular vectors (r = min(m, n))
    Vec sigma;       ///< singular values, descending
    Matrix v;        ///< n x r right singular vectors
};

/// Full thin SVD A = U diag(sigma) V^T via one-sided Jacobi (m >= n is
/// handled internally by transposing when needed).
SvdResult svd(const Matrix& a);

/// Singular values only (descending).
Vec singular_values(const Matrix& a);

}  // namespace atmor::la
