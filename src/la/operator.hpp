// Linear-operator abstraction: the seam between what the MOR pipeline needs
// (matvecs and shifted resolvent solves against G1, Jacobians, D1 blocks) and
// how the matrix is stored (dense row-major or CSR).
//
// Every operator instance carries a process-unique id; la::SolverBackend keys
// its factorization cache on (id, shift), which is what turns "factor once
// per expansion point / Newton Jacobian, solve thousands of times" into an
// invariant of the pipeline instead of a per-call-site discipline.
#pragma once

#include <cstdint>
#include <memory>

#include "la/matrix.hpp"
#include "sparse/csr.hpp"

namespace atmor::la {

class LinearOperator {
public:
    LinearOperator();
    virtual ~LinearOperator() = default;
    LinearOperator(const LinearOperator&) = delete;
    LinearOperator& operator=(const LinearOperator&) = delete;

    [[nodiscard]] virtual int rows() const = 0;
    [[nodiscard]] virtual int cols() const = 0;
    [[nodiscard]] bool square() const { return rows() == cols(); }

    /// y = A x.
    [[nodiscard]] virtual Vec apply(const Vec& x) const = 0;
    [[nodiscard]] virtual ZVec apply(const ZVec& x) const = 0;

    /// Dense materialisation (legacy paths, small systems, diagnostics).
    [[nodiscard]] virtual Matrix to_dense() const = 0;

    /// CSR view when the operator is natively sparse, nullptr otherwise.
    [[nodiscard]] virtual const sparse::CsrMatrix* csr() const { return nullptr; }
    [[nodiscard]] bool is_sparse() const { return csr() != nullptr; }

    /// Process-unique identity (cache key for factorisations).
    [[nodiscard]] std::uint64_t id() const { return id_; }

private:
    std::uint64_t id_;
};

/// Dense operator; shares ownership of the matrix so Qldae copies and cached
/// factorisations can alias the same storage.
class DenseOperator final : public LinearOperator {
public:
    explicit DenseOperator(std::shared_ptr<const Matrix> m);
    explicit DenseOperator(Matrix m);

    [[nodiscard]] int rows() const override { return m_->rows(); }
    [[nodiscard]] int cols() const override { return m_->cols(); }
    [[nodiscard]] Vec apply(const Vec& x) const override { return matvec(*m_, x); }
    [[nodiscard]] ZVec apply(const ZVec& x) const override { return matvec_rc(*m_, x); }
    [[nodiscard]] Matrix to_dense() const override { return *m_; }

    [[nodiscard]] const Matrix& matrix() const { return *m_; }
    [[nodiscard]] const std::shared_ptr<const Matrix>& shared_matrix() const { return m_; }

private:
    std::shared_ptr<const Matrix> m_;
};

/// CSR-sparse operator.
class SparseOperator final : public LinearOperator {
public:
    explicit SparseOperator(std::shared_ptr<const sparse::CsrMatrix> m);
    explicit SparseOperator(sparse::CsrMatrix m);

    [[nodiscard]] int rows() const override { return m_->rows(); }
    [[nodiscard]] int cols() const override { return m_->cols(); }
    [[nodiscard]] Vec apply(const Vec& x) const override { return m_->matvec(x); }
    [[nodiscard]] ZVec apply(const ZVec& x) const override { return m_->matvec(x); }
    [[nodiscard]] Matrix to_dense() const override { return m_->to_dense(); }
    [[nodiscard]] const sparse::CsrMatrix* csr() const override { return m_.get(); }

    [[nodiscard]] const std::shared_ptr<const sparse::CsrMatrix>& shared_csr() const {
        return m_;
    }

private:
    std::shared_ptr<const sparse::CsrMatrix> m_;
};

/// View of the shifted operator (shift*I - A) -- the resolvent's left-hand
/// side. apply() composes the shift on the fly; nothing is materialised.
/// The real-valued apply requires a real shift.
class ShiftedOperator final : public LinearOperator {
public:
    ShiftedOperator(std::shared_ptr<const LinearOperator> a, Complex shift);

    [[nodiscard]] int rows() const override { return a_->rows(); }
    [[nodiscard]] int cols() const override { return a_->cols(); }
    [[nodiscard]] Vec apply(const Vec& x) const override;
    [[nodiscard]] ZVec apply(const ZVec& x) const override;
    [[nodiscard]] Matrix to_dense() const override;

    [[nodiscard]] Complex shift() const { return shift_; }
    [[nodiscard]] const LinearOperator& base() const { return *a_; }

private:
    std::shared_ptr<const LinearOperator> a_;
    Complex shift_;
};

std::shared_ptr<const DenseOperator> make_dense_operator(Matrix m);
std::shared_ptr<const SparseOperator> make_sparse_operator(sparse::CsrMatrix m);

}  // namespace atmor::la
