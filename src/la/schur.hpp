// Real Schur decomposition (Hessenberg reduction + Francis double-shift QR)
// and its complex upper-triangular refinement.
//
// This is the structural backbone of the associated-transform method
// (paper Sec. 2.3): once G1 = Z T Z^H with T upper triangular, every shifted
// resolvent (sigma*I - G1)^{-1} is a triangular backsolve, and every
// Kronecker-sum resolvent (sigma*I - G1 (+) G1)^{-1} is a triangular
// Sylvester solve -- no n^2-sized factorisation is ever formed.
#pragma once

#include "la/matrix.hpp"

namespace atmor::la {

/// Result of the Hessenberg reduction A = Q H Q^T (H upper Hessenberg).
struct HessenbergResult {
    Matrix h;
    Matrix q;
};

/// Reduce a square matrix to upper Hessenberg form by Householder similarity.
HessenbergResult hessenberg_reduce(const Matrix& a);

/// Real Schur form A = Q T Q^T with T quasi-upper-triangular
/// (1x1 real blocks and 2x2 blocks carrying complex conjugate pairs;
///  2x2 blocks with real eigenvalues are split).
struct RealSchurResult {
    Matrix t;
    Matrix q;
};

RealSchurResult real_schur(const Matrix& a);

/// Complex Schur form A = Z T Z^H with T strictly upper triangular.
///
/// Holds the factors and provides the shifted solves the structured
/// Kronecker solvers are built from.
class ComplexSchur {
public:
    /// Factor a real square matrix.
    explicit ComplexSchur(const Matrix& a);

    [[nodiscard]] int dim() const { return t_.rows(); }
    [[nodiscard]] const ZMatrix& t() const { return t_; }
    [[nodiscard]] const ZMatrix& z() const { return z_; }

    /// Eigenvalues (diagonal of T).
    [[nodiscard]] ZVec eigenvalues() const;

    /// Solve (sigma*I - A) x = b through the Schur factors.
    /// Throws util::InternalError if sigma is (numerically) an eigenvalue.
    [[nodiscard]] ZVec solve_shifted(Complex sigma, const ZVec& b) const;

    /// Solve (sigma*I - T) y = w with T upper triangular (no basis change).
    [[nodiscard]] ZVec solve_shifted_triangular(Complex sigma, ZVec w) const;

    /// y = Z^H x  (into Schur coordinates).
    [[nodiscard]] ZVec to_schur_basis(const ZVec& x) const;
    /// y = Z x  (back to original coordinates).
    [[nodiscard]] ZVec from_schur_basis(const ZVec& x) const;

    /// y = A x evaluated through the factors (Z T Z^H x).
    [[nodiscard]] ZVec apply(const ZVec& x) const;

private:
    ZMatrix t_;
    ZMatrix z_;
};

/// Eigenvalues of a real square matrix via the real Schur form.
ZVec eigenvalues(const Matrix& a);

/// Spectral abscissa max_i Re(lambda_i); < 0 means Hurwitz-stable.
double spectral_abscissa(const Matrix& a);

/// True if all eigenvalues have real part < -margin.
bool is_hurwitz(const Matrix& a, double margin = 0.0);

}  // namespace atmor::la
