// Sylvester and Lyapunov solvers (Bartels-Stewart) built on the complex
// Schur form.
//
// The central primitive is `resolvent_kron_sum_solve`, which evaluates
//     (sigma*I - A (+) A)^{-1} vec(C)  as the matrix equation
//     sigma*X - A X - X A^T = C
// in O(n^3) through the Schur factors of A -- this is exactly how the paper
// (Sec. 2.3) proposes to make the n^2-dimensional blocks of the associated
// realisation (eq. 17) tractable.
#pragma once

#include "la/matrix.hpp"
#include "la/schur.hpp"

namespace atmor::la {

/// Solve sigma*Y - T1 Y - Y T2^T = C where T1 (m x m) and T2 (p x p) are
/// upper triangular; Y and C are m x p. Columns are solved in descending
/// order; each column is a shifted triangular solve with T1.
ZMatrix tri_sylvester_shifted(const ZMatrix& t1, const ZMatrix& t2, Complex sigma, ZMatrix c);

/// Solve T1 Y + Y T2 = C with both T1 (m x m) and T2 (p x p) upper
/// triangular; ascending column recurrence.
ZMatrix tri_sylvester_sum(const ZMatrix& t1, const ZMatrix& t2, ZMatrix c);

/// Solve sigma*X - A X - X A^T = C given the complex Schur form of A.
/// This is (sigma*I - A (+) A)^{-1} in vec() coordinates.
ZMatrix resolvent_kron_sum_solve(const ComplexSchur& schur_a, Complex sigma, const ZMatrix& c);

/// Dense real Sylvester A X + X B = C (A: m x m, B: p x p, C/X: m x p).
/// Requires spectra(A) and -spectra(B) disjoint.
Matrix solve_sylvester(const Matrix& a, const Matrix& b, const Matrix& c);

/// Dense real Lyapunov A P + P A^T = Q.
Matrix solve_lyapunov(const Matrix& a, const Matrix& q);

/// Controllability gramian P solving A P + P A^T + B B^T = 0 (A Hurwitz).
Matrix controllability_gramian(const Matrix& a, const Matrix& b);

}  // namespace atmor::la
