// The wire envelope of the serving protocol: a length-prefixed, checksummed
// binary frame carrying one serve_api payload (an encoded ServeRequest or
// ServeResponse), deliberately shaped like the rom::io artifact envelope so
// the two integrity stories are one idiom:
//
//   "ATMORNET" magic | u32 protocol version | u8 FrameKind |
//   u64 payload size | payload bytes | u64 FNV-1a checksum of the payload
//
// Every failure mode a socket can feed us -- a short read, a foreign
// protocol, a version skew, flipped bits, an absurd length announcing more
// than the peer may send -- surfaces as a typed ProtocolError mirroring the
// IoError taxonomy, with a stable numeric code (util/error_codes.hpp) so a
// client can report it exactly like an in-process failure. Like the
// artifact format, frames assume a little-endian host on both ends.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/error_codes.hpp"

namespace atmor::net {

/// Bumped on any frame-layout or serve_api payload-layout change; a daemon
/// only ever speaks one version (no best-effort parsing of future frames).
inline constexpr std::uint32_t kProtocolVersion = 1;

/// Frames a peer may send without being cut off. Generous: a response
/// carrying dense sweep matrices is megabytes, not gigabytes. The daemon's
/// DaemonOptions can lower it per deployment.
inline constexpr std::uint64_t kDefaultMaxFrameBytes = 64ull << 20;

/// What the frame carries; a daemon rejects response frames and a client
/// rejects request frames as corrupt instead of mis-parsing them.
enum class FrameKind : std::uint8_t { request = 0, response = 1 };

enum class ProtocolErrorKind {
    socket_failed,      ///< connect/read/write failed at the OS level
    truncated,          ///< peer closed mid-frame
    bad_magic,          ///< not the atmor serving protocol at all
    version_mismatch,   ///< peer speaks a different protocol version
    checksum_mismatch,  ///< payload bytes damaged in flight
    oversized,          ///< announced payload exceeds the frame budget
    corrupt,            ///< frame intact but the content is invalid
};

const char* to_string(ProtocolErrorKind kind);

/// The stable numeric code for a ProtocolErrorKind (same mapping idiom as
/// rom::error_code(IoErrorKind)).
[[nodiscard]] constexpr util::ErrorCode error_code(ProtocolErrorKind kind) {
    switch (kind) {
        case ProtocolErrorKind::socket_failed: return util::ErrorCode::proto_socket_failed;
        case ProtocolErrorKind::truncated: return util::ErrorCode::proto_truncated;
        case ProtocolErrorKind::bad_magic: return util::ErrorCode::proto_bad_magic;
        case ProtocolErrorKind::version_mismatch:
            return util::ErrorCode::proto_version_mismatch;
        case ProtocolErrorKind::checksum_mismatch:
            return util::ErrorCode::proto_checksum_mismatch;
        case ProtocolErrorKind::oversized: return util::ErrorCode::proto_oversized;
        case ProtocolErrorKind::corrupt: return util::ErrorCode::proto_corrupt;
    }
    return util::ErrorCode::proto_corrupt;
}

class ProtocolError : public std::runtime_error {
public:
    ProtocolError(ProtocolErrorKind kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}
    [[nodiscard]] ProtocolErrorKind kind() const { return kind_; }

private:
    ProtocolErrorKind kind_;
};

/// Fixed frame overhead: magic(8) + version(4) + kind(1) + size(8) before
/// the payload, checksum(8) after it.
inline constexpr std::size_t kFrameHeaderBytes = 8 + 4 + 1 + 8;
inline constexpr std::size_t kFrameChecksumBytes = 8;

/// Wrap a serve_api payload in the protocol envelope.
[[nodiscard]] std::string frame_message(FrameKind kind, const std::string& payload);

/// Incremental parser over a connection's receive buffer: try to take ONE
/// complete frame off the front of `buffer`.
///   * Returns 0 when the buffer holds only a PREFIX of a valid frame (read
///     more and try again); the buffer is untouched.
///   * On success returns the number of bytes the frame occupied (caller
///     erases them) and fills kind/payload.
///   * Malformed data throws the typed ProtocolError taxonomy: bad_magic /
///     version_mismatch / oversized are detectable from the header alone
///     (and are detected eagerly, before waiting for more bytes);
///     checksum_mismatch once the full frame is present.
/// The caller decides which errors are connection-fatal; the frame
/// boundary itself is recoverable for checksum_mismatch (the full frame
/// length is known, so the caller MAY skip it and keep the connection).
[[nodiscard]] std::size_t try_unframe(const std::string& buffer, FrameKind* kind_out,
                                      std::string* payload_out,
                                      std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Strict whole-buffer form (tests, blocking client): `bytes` must hold
/// exactly one frame. An incomplete frame throws truncated; trailing bytes
/// after the frame throw corrupt.
[[nodiscard]] std::string unframe_message(const std::string& bytes, FrameKind* kind_out,
                                          std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes);

}  // namespace atmor::net
