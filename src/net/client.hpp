// Blocking client for the serving protocol: the other half of the unified
// API. A ServeClient speaks the SAME ServeRequest/ServeResponse types as an
// in-process ServeEngine call -- call() is the wire spelling of
// engine.serve(req), and (by the codec's determinism) returns answers
// byte-identical to it. One connection per client, reused across calls;
// not thread-safe (one request in flight per connection by design -- use a
// client per thread, as the bench and tests do).
#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.hpp"
#include "rom/serve_api.hpp"

namespace atmor::net {

class ServeClient {
public:
    /// Connect to a daemon. Throws ProtocolError{socket_failed} when the
    /// endpoint refuses.
    ServeClient(const std::string& host, std::uint16_t port);
    ~ServeClient();

    ServeClient(const ServeClient&) = delete;
    ServeClient& operator=(const ServeClient&) = delete;
    ServeClient(ServeClient&& other) noexcept;
    ServeClient& operator=(ServeClient&& other) noexcept;

    /// Send one request and block for its response. Transport failures are
    /// typed ProtocolErrors (socket_failed on OS errors, truncated when the
    /// peer closes mid-frame); a response payload that fails to decode
    /// behind a valid frame is ProtocolError{corrupt}. A response whose
    /// error field is set is returned as-is -- the caller inspects
    /// resp.error exactly as with ServeEngine::serve.
    [[nodiscard]] rom::ServeResponse call(const rom::ServeRequest& req);

    /// Frame and send pre-encoded payload bytes, returning the raw response
    /// payload bytes (no decode). The bit-identity pins in the tests/bench
    /// compare THESE against rom::encode_response of the in-process answer.
    [[nodiscard]] std::string call_raw(const std::string& request_payload);

    [[nodiscard]] bool connected() const { return fd_ >= 0; }

private:
    int fd_ = -1;
    std::string rx_;  ///< bytes received past the last frame
};

}  // namespace atmor::net
