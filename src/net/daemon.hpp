// The network front door over rom::ServeEngine: a poll-based event loop on
// ONE IO thread (acceptor + connection reads/writes + admission control)
// feeding N worker threads that run the engine's unified serve() dispatch.
// The sharding/coalescing substrate already makes the engine safe for a
// thread pool, so the daemon adds exactly what a socket adds: framing,
// admission, and lifecycle.
//
// Admission control runs BEFORE any payload work, in the IO thread:
//   * queue-depth backpressure: a request arriving with the worker queue at
//     max_queue_depth is answered immediately with a typed Overloaded
//     response (ErrorCode::serve_overloaded) -- never a silent drop;
//   * per-tenant token buckets: each request's tenant (peeked from the
//     payload prefix without decoding the body) spends one token; a tenant
//     over its rate gets the same typed Overloaded answer while other
//     tenants sail through. Buckets live in the IO thread -- no locks.
//
// Error containment mirrors the taxonomy split: a damaged PAYLOAD behind a
// valid frame (checksum_mismatch, or an undecodable request body) earns a
// typed error response and the connection SURVIVES; a broken FRAMING stream
// (bad magic, version skew, oversized announcement) earns the typed error
// response and then the connection closes, because the byte stream has no
// trustworthy next frame boundary. The daemon itself never dies on input.
//
// Graceful drain: request_stop() is async-signal-safe (an atomic flag plus
// a wake-pipe write), so a SIGTERM handler may call it directly. The loop
// then stops accepting and stops READING, but every admitted request is
// still served and every response flushed before the workers join.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.hpp"
#include "rom/serve_engine.hpp"

namespace atmor::net {

struct DaemonOptions {
    std::string bind_address = "127.0.0.1";
    /// 0 binds an ephemeral port; read the actual one back via port().
    std::uint16_t port = 0;
    /// Worker threads running ServeEngine::serve. The engine fans sweeps and
    /// batches out on the global pool itself, so a handful of workers keeps
    /// a machine busy.
    int workers = 2;
    /// Admitted-but-unstarted requests the daemon will hold before answering
    /// Overloaded (backpressure, never a silent drop).
    std::size_t max_queue_depth = 64;
    /// Per-tenant token-bucket rate (requests/second); 0 disables tenant
    /// admission control entirely.
    double tenant_rate = 0.0;
    /// Bucket capacity: the burst a tenant may spend ahead of its rate.
    double tenant_burst = 8.0;
    /// Per-frame payload budget (a peer announcing more is rejected with a
    /// typed oversized error).
    std::uint64_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// Monotonic counters (snapshot; the live fields are relaxed atomics). The
/// accounting identity under drain is the observable contract:
/// requests_admitted == responses_sent once wait() returns, and
/// overloaded_* + protocol_errors count every request that was answered
/// without reaching the engine.
struct DaemonStats {
    long connections_accepted = 0;
    long requests_admitted = 0;   ///< handed to the worker queue
    long responses_sent = 0;      ///< engine answers queued to the socket
    long overloaded_queue = 0;    ///< typed Overloaded: queue depth
    long overloaded_tenant = 0;   ///< typed Overloaded: tenant over rate
    long protocol_errors = 0;     ///< typed protocol/decode error responses
    long drained_requests = 0;    ///< requests served after stop was requested
};

class Daemon {
public:
    Daemon(std::shared_ptr<rom::ServeEngine> engine, DaemonOptions opt = {});
    ~Daemon();

    Daemon(const Daemon&) = delete;
    Daemon& operator=(const Daemon&) = delete;

    /// Bind, listen, and spawn the IO + worker threads. Throws
    /// ProtocolError{socket_failed} when the bind fails.
    void start();

    /// The bound port (after start(); the ephemeral-port answer).
    [[nodiscard]] std::uint16_t port() const { return port_; }

    /// Async-signal-safe stop request: flips the atomic flag and pokes the
    /// wake pipe. Safe to call from a SIGTERM handler, from any thread, and
    /// more than once.
    void request_stop();

    /// Block until the drain completes and every thread joined.
    void wait();

    /// request_stop() + wait().
    void stop();

    [[nodiscard]] DaemonStats stats() const;

    [[nodiscard]] const std::shared_ptr<rom::ServeEngine>& engine() const { return engine_; }
    [[nodiscard]] const DaemonOptions& options() const { return opt_; }

private:
    struct Impl;

    void io_loop();
    void worker_loop();

    std::shared_ptr<rom::ServeEngine> engine_;
    DaemonOptions opt_;
    std::uint16_t port_ = 0;
    std::unique_ptr<Impl> impl_;
    std::thread io_thread_;
    std::vector<std::thread> workers_;
    std::atomic<bool> started_{false};
    std::atomic<bool> joined_{false};
};

}  // namespace atmor::net
