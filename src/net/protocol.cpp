#include "net/protocol.hpp"

#include <cstring>

#include "rom/reduced_model.hpp"

namespace atmor::net {

namespace {

constexpr char kMagic[8] = {'A', 'T', 'M', 'O', 'R', 'N', 'E', 'T'};

[[noreturn]] void fail(ProtocolErrorKind kind, const std::string& what) {
    throw ProtocolError(kind, "protocol: " + what + " (" + to_string(kind) + ")");
}

void append_raw(std::string& out, const void* data, std::size_t n) {
    out.append(static_cast<const char*>(data), n);
}

template <typename T>
T read_raw(const std::string& buf, std::size_t offset) {
    T v;
    std::memcpy(&v, buf.data() + offset, sizeof(T));
    return v;
}

}  // namespace

const char* to_string(ProtocolErrorKind kind) {
    switch (kind) {
        case ProtocolErrorKind::socket_failed: return "socket_failed";
        case ProtocolErrorKind::truncated: return "truncated";
        case ProtocolErrorKind::bad_magic: return "bad_magic";
        case ProtocolErrorKind::version_mismatch: return "version_mismatch";
        case ProtocolErrorKind::checksum_mismatch: return "checksum_mismatch";
        case ProtocolErrorKind::oversized: return "oversized";
        case ProtocolErrorKind::corrupt: return "corrupt";
    }
    return "unknown";
}

std::string frame_message(FrameKind kind, const std::string& payload) {
    std::string out;
    out.reserve(kFrameHeaderBytes + payload.size() + kFrameChecksumBytes);
    append_raw(out, kMagic, sizeof(kMagic));
    const std::uint32_t version = kProtocolVersion;
    append_raw(out, &version, sizeof(version));
    const std::uint8_t k = static_cast<std::uint8_t>(kind);
    append_raw(out, &k, sizeof(k));
    const std::uint64_t size = payload.size();
    append_raw(out, &size, sizeof(size));
    out += payload;
    const std::uint64_t checksum = rom::fnv1a(payload.data(), payload.size());
    append_raw(out, &checksum, sizeof(checksum));
    return out;
}

std::size_t try_unframe(const std::string& buffer, FrameKind* kind_out,
                        std::string* payload_out, std::uint64_t max_frame_bytes) {
    // Header checks run as soon as their bytes are present: a peer speaking
    // the wrong protocol is rejected after 8 bytes, not after it happens to
    // deliver a full frame's worth of garbage.
    if (buffer.size() >= sizeof(kMagic) &&
        std::memcmp(buffer.data(), kMagic, sizeof(kMagic)) != 0)
        fail(ProtocolErrorKind::bad_magic, "frame does not start with ATMORNET");
    if (buffer.size() >= 12) {
        const std::uint32_t version = read_raw<std::uint32_t>(buffer, 8);
        if (version != kProtocolVersion)
            fail(ProtocolErrorKind::version_mismatch,
                 "peer speaks protocol version " + std::to_string(version) +
                     ", this build speaks " + std::to_string(kProtocolVersion));
    }
    if (buffer.size() < kFrameHeaderBytes) return 0;

    const std::uint8_t kind = read_raw<std::uint8_t>(buffer, 12);
    if (kind > static_cast<std::uint8_t>(FrameKind::response))
        fail(ProtocolErrorKind::corrupt, "unknown frame kind " + std::to_string(kind));
    const std::uint64_t payload_size = read_raw<std::uint64_t>(buffer, 13);
    if (payload_size > max_frame_bytes)
        fail(ProtocolErrorKind::oversized,
             "frame announces " + std::to_string(payload_size) + " payload bytes, budget is " +
                 std::to_string(max_frame_bytes));

    const std::size_t total = kFrameHeaderBytes + static_cast<std::size_t>(payload_size) +
                              kFrameChecksumBytes;
    if (buffer.size() < total) return 0;

    const std::uint64_t stored = read_raw<std::uint64_t>(
        buffer, kFrameHeaderBytes + static_cast<std::size_t>(payload_size));
    const std::uint64_t computed =
        rom::fnv1a(buffer.data() + kFrameHeaderBytes, static_cast<std::size_t>(payload_size));
    if (stored != computed)
        fail(ProtocolErrorKind::checksum_mismatch, "frame payload failed its checksum");

    *kind_out = static_cast<FrameKind>(kind);
    payload_out->assign(buffer, kFrameHeaderBytes, static_cast<std::size_t>(payload_size));
    return total;
}

std::string unframe_message(const std::string& bytes, FrameKind* kind_out,
                            std::uint64_t max_frame_bytes) {
    FrameKind kind = FrameKind::request;
    std::string payload;
    const std::size_t consumed = try_unframe(bytes, &kind, &payload, max_frame_bytes);
    if (consumed == 0)
        fail(ProtocolErrorKind::truncated,
             "buffer holds " + std::to_string(bytes.size()) + " bytes of an incomplete frame");
    if (consumed != bytes.size())
        fail(ProtocolErrorKind::corrupt,
             std::to_string(bytes.size() - consumed) + " trailing bytes after the frame");
    *kind_out = kind;
    return payload;
}

}  // namespace atmor::net
