#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "rom/io.hpp"

namespace atmor::net {

namespace {

[[noreturn]] void fail_socket(const std::string& what) {
    throw ProtocolError(ProtocolErrorKind::socket_failed,
                        "client: " + what + ": " + std::strerror(errno));
}

}  // namespace

ServeClient::ServeClient(const std::string& host, std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) fail_socket("socket()");

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd_);
        fd_ = -1;
        throw ProtocolError(ProtocolErrorKind::socket_failed,
                            "client: invalid host address '" + host + "'");
    }
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd_);
        fd_ = -1;
        errno = err;
        fail_socket("connect(" + host + ":" + std::to_string(port) + ")");
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

ServeClient::~ServeClient() {
    if (fd_ >= 0) ::close(fd_);
}

ServeClient::ServeClient(ServeClient&& other) noexcept
    : fd_(other.fd_), rx_(std::move(other.rx_)) {
    other.fd_ = -1;
}

ServeClient& ServeClient::operator=(ServeClient&& other) noexcept {
    if (this != &other) {
        if (fd_ >= 0) ::close(fd_);
        fd_ = other.fd_;
        rx_ = std::move(other.rx_);
        other.fd_ = -1;
    }
    return *this;
}

std::string ServeClient::call_raw(const std::string& request_payload) {
    if (fd_ < 0)
        throw ProtocolError(ProtocolErrorKind::socket_failed, "client: not connected");

    const std::string frame = frame_message(FrameKind::request, request_payload);
    std::size_t sent = 0;
    while (sent < frame.size()) {
        const ssize_t n =
            ::send(fd_, frame.data() + sent, frame.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            fail_socket("send()");
        }
        sent += static_cast<std::size_t>(n);
    }

    // Read until one complete frame parses off the receive buffer. Typed
    // framing errors from try_unframe (wrong magic, version skew, damaged
    // checksum) propagate to the caller as-is.
    char buf[64 * 1024];
    while (true) {
        FrameKind kind = FrameKind::response;
        std::string payload;
        const std::size_t consumed = try_unframe(rx_, &kind, &payload);
        if (consumed > 0) {
            rx_.erase(0, consumed);
            if (kind != FrameKind::response)
                throw ProtocolError(ProtocolErrorKind::corrupt,
                                    "client: daemon sent a request frame");
            return payload;
        }
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n > 0) {
            rx_.append(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (n == 0)
            throw ProtocolError(ProtocolErrorKind::truncated,
                                "client: daemon closed the connection mid-frame (" +
                                    std::to_string(rx_.size()) + " bytes buffered)");
        if (errno == EINTR) continue;
        fail_socket("recv()");
    }
}

rom::ServeResponse ServeClient::call(const rom::ServeRequest& req) {
    const std::string payload = call_raw(rom::encode_request(req));
    try {
        return rom::decode_response(payload);
    } catch (const rom::IoError& e) {
        // The frame's checksum passed but the payload does not decode: the
        // peers disagree about the serve_api layout. A protocol-level fault,
        // reported as such.
        throw ProtocolError(ProtocolErrorKind::corrupt,
                            std::string("client: response payload does not decode: ") +
                                e.what());
    }
}

}  // namespace atmor::net
