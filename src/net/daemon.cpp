#include "net/daemon.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "rom/io.hpp"
#include "rom/serve_api.hpp"
#include "util/check.hpp"

namespace atmor::net {

namespace {

void set_nonblocking(int fd) {
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// A typed-error response frame (the "never a silent drop" path): whatever
/// went wrong before the engine saw the request still earns the client a
/// ServeResponse with a stable code.
std::string error_frame(rom::RequestKind kind, util::ErrorCode code, const std::string& what) {
    rom::ServeResponse resp;
    resp.kind = kind;
    resp.error.code = code;
    resp.error.message = what;
    return frame_message(FrameKind::response, rom::encode_response(resp));
}

/// Best-effort request kind from the tenant+kind payload prefix, so error
/// responses for a payload damaged mid-body still carry the kind the client
/// actually sent. Falls back to frequency_sweep when even the prefix is
/// unreadable.
rom::RequestKind peek_kind(const std::string& payload) {
    try {
        rom::Reader r(payload);
        (void)r.str();  // tenant comes first
        const std::uint8_t k = r.u8();
        if (k <= static_cast<std::uint8_t>(rom::RequestKind::parametric_batch))
            return static_cast<rom::RequestKind>(k);
    } catch (const rom::IoError&) {
    }
    return rom::RequestKind::frequency_sweep;
}

}  // namespace

struct Daemon::Impl {
    // -- IO-thread-owned connection state. -----------------------------------
    struct Conn {
        int fd = -1;
        std::string in;        ///< unparsed received bytes
        std::string out;       ///< unflushed response bytes
        std::size_t out_off = 0;
        int in_flight = 0;     ///< admitted requests not yet answered
        bool read_closed = false;
        bool closing = false;  ///< framing broke: close once out flushes
    };

    /// Per-tenant token bucket (IO thread only -- no lock).
    struct Bucket {
        double tokens = 0.0;
        std::chrono::steady_clock::time_point last;
    };

    struct WorkItem {
        std::uint64_t conn = 0;
        std::string payload;
    };
    struct Completion {
        std::uint64_t conn = 0;
        std::string frame;
    };

    int listen_fd = -1;
    int wake_read = -1;
    int wake_write = -1;
    std::atomic<bool> stop_requested{false};

    std::unordered_map<std::uint64_t, Conn> conns;
    std::unordered_map<std::string, Bucket> buckets;
    std::uint64_t next_conn_id = 1;

    std::mutex work_mutex;
    std::condition_variable work_cv;
    std::deque<WorkItem> work;
    bool workers_done = false;

    std::mutex done_mutex;
    std::deque<Completion> done;

    std::atomic<std::size_t> queued_or_running{0};  ///< admitted, not yet completed

    // -- Counters (DaemonStats). ---------------------------------------------
    std::atomic<long> connections_accepted{0};
    std::atomic<long> requests_admitted{0};
    std::atomic<long> responses_sent{0};
    std::atomic<long> overloaded_queue{0};
    std::atomic<long> overloaded_tenant{0};
    std::atomic<long> protocol_errors{0};
    std::atomic<long> drained_requests{0};

    void wake() {
        if (wake_write >= 0) {
            const char byte = 1;
            [[maybe_unused]] ssize_t n = ::write(wake_write, &byte, 1);
        }
    }

    ~Impl() {
        for (auto& [id, c] : conns) {
            (void)id;
            if (c.fd >= 0) ::close(c.fd);
        }
        if (listen_fd >= 0) ::close(listen_fd);
        if (wake_read >= 0) ::close(wake_read);
        if (wake_write >= 0) ::close(wake_write);
    }
};

Daemon::Daemon(std::shared_ptr<rom::ServeEngine> engine, DaemonOptions opt)
    : engine_(std::move(engine)), opt_(std::move(opt)), impl_(std::make_unique<Impl>()) {
    ATMOR_REQUIRE(engine_ != nullptr, "net::Daemon: null engine");
    ATMOR_REQUIRE(opt_.workers >= 1, "net::Daemon: need at least one worker");
    ATMOR_REQUIRE(opt_.max_queue_depth >= 1, "net::Daemon: need a queue slot");
    ATMOR_REQUIRE(opt_.tenant_rate >= 0.0 && opt_.tenant_burst >= 1.0,
                  "net::Daemon: invalid tenant bucket parameters");
}

Daemon::~Daemon() {
    if (started_.load() && !joined_.load()) {
        request_stop();
        wait();
    }
}

void Daemon::start() {
    ATMOR_REQUIRE(!started_.load(), "net::Daemon: start() called twice");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        throw ProtocolError(ProtocolErrorKind::socket_failed,
                            std::string("daemon: socket(): ") + std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(opt_.port);
    if (::inet_pton(AF_INET, opt_.bind_address.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        throw ProtocolError(ProtocolErrorKind::socket_failed,
                            "daemon: invalid bind address '" + opt_.bind_address + "'");
    }
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        throw ProtocolError(ProtocolErrorKind::socket_failed, "daemon: bind/listen: " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
    set_nonblocking(fd);
    impl_->listen_fd = fd;

    int pipe_fds[2];
    if (::pipe(pipe_fds) != 0) {
        ::close(fd);
        impl_->listen_fd = -1;
        throw ProtocolError(ProtocolErrorKind::socket_failed,
                            std::string("daemon: pipe(): ") + std::strerror(errno));
    }
    set_nonblocking(pipe_fds[0]);
    set_nonblocking(pipe_fds[1]);
    impl_->wake_read = pipe_fds[0];
    impl_->wake_write = pipe_fds[1];

    started_.store(true);
    io_thread_ = std::thread([this] { io_loop(); });
    workers_.reserve(static_cast<std::size_t>(opt_.workers));
    for (int i = 0; i < opt_.workers; ++i)
        workers_.emplace_back([this] { worker_loop(); });
}

void Daemon::request_stop() {
    // Async-signal-safe by construction: one atomic store + one write(2).
    impl_->stop_requested.store(true, std::memory_order_release);
    impl_->wake();
}

void Daemon::wait() {
    if (joined_.exchange(true)) return;
    if (io_thread_.joinable()) io_thread_.join();
    for (std::thread& w : workers_)
        if (w.joinable()) w.join();
}

void Daemon::stop() {
    request_stop();
    wait();
}

DaemonStats Daemon::stats() const {
    DaemonStats s;
    s.connections_accepted = impl_->connections_accepted.load(std::memory_order_relaxed);
    s.requests_admitted = impl_->requests_admitted.load(std::memory_order_relaxed);
    s.responses_sent = impl_->responses_sent.load(std::memory_order_relaxed);
    s.overloaded_queue = impl_->overloaded_queue.load(std::memory_order_relaxed);
    s.overloaded_tenant = impl_->overloaded_tenant.load(std::memory_order_relaxed);
    s.protocol_errors = impl_->protocol_errors.load(std::memory_order_relaxed);
    s.drained_requests = impl_->drained_requests.load(std::memory_order_relaxed);
    return s;
}

void Daemon::worker_loop() {
    Impl& im = *impl_;
    while (true) {
        Impl::WorkItem item;
        {
            std::unique_lock<std::mutex> lock(im.work_mutex);
            im.work_cv.wait(lock, [&] { return im.workers_done || !im.work.empty(); });
            if (im.work.empty()) return;  // workers_done and drained
            item = std::move(im.work.front());
            im.work.pop_front();
        }

        std::string frame;
        try {
            const rom::ServeRequest req = rom::decode_request(item.payload);
            // serve() never throws: engine-side failures come back as the
            // typed error taxonomy inside the response.
            const rom::ServeResponse resp = engine_->serve(req);
            frame = frame_message(FrameKind::response, rom::encode_response(resp));
        } catch (const rom::IoError& e) {
            // Damaged payload behind a valid frame: typed error response,
            // the connection survives.
            im.protocol_errors.fetch_add(1, std::memory_order_relaxed);
            frame = error_frame(peek_kind(item.payload), rom::error_code(e.kind()),
                                e.what());
        } catch (const std::exception& e) {
            im.protocol_errors.fetch_add(1, std::memory_order_relaxed);
            frame = error_frame(peek_kind(item.payload),
                                util::ErrorCode::internal, e.what());
        }
        {
            std::lock_guard<std::mutex> lock(im.done_mutex);
            im.done.push_back(Impl::Completion{item.conn, std::move(frame)});
        }
        im.wake();
    }
}

void Daemon::io_loop() {
    Impl& im = *impl_;
    const bool rate_limited = opt_.tenant_rate > 0.0;

    // -- IO-thread helpers (lambdas so they can see the locals). -------------
    const auto flush = [&](Impl::Conn& c) {
        while (c.out_off < c.out.size()) {
            const ssize_t n = ::send(c.fd, c.out.data() + c.out_off, c.out.size() - c.out_off,
                                     MSG_NOSIGNAL);
            if (n > 0) {
                c.out_off += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
            return false;  // peer gone; caller closes
        }
        c.out.clear();
        c.out_off = 0;
        return true;
    };

    const auto admit = [&](std::uint64_t conn_id, Impl::Conn& c, std::string payload) {
        // Cheap header peek: tenant (encoded first for exactly this reason)
        // and the request kind, without decoding the body.
        std::string tenant;
        rom::RequestKind kind = rom::RequestKind::frequency_sweep;
        try {
            rom::Reader r(payload);
            tenant = r.str();
            const std::uint8_t k = r.u8();
            if (k <= static_cast<std::uint8_t>(rom::RequestKind::parametric_batch))
                kind = static_cast<rom::RequestKind>(k);
        } catch (const rom::IoError& e) {
            im.protocol_errors.fetch_add(1, std::memory_order_relaxed);
            c.out += error_frame(kind, rom::error_code(e.kind()), e.what());
            return;
        }

        // Queue-depth backpressure before any expensive work.
        if (im.queued_or_running.load(std::memory_order_relaxed) >= opt_.max_queue_depth) {
            im.overloaded_queue.fetch_add(1, std::memory_order_relaxed);
            c.out += error_frame(kind, util::ErrorCode::serve_overloaded,
                                 "daemon overloaded: worker queue is full");
            return;
        }

        // Per-tenant token bucket (IO-thread-local, lock-free).
        if (rate_limited) {
            const auto now = std::chrono::steady_clock::now();
            auto [it, fresh] = im.buckets.try_emplace(tenant);
            Impl::Bucket& b = it->second;
            if (fresh) {
                b.tokens = opt_.tenant_burst;
                b.last = now;
            } else {
                const double dt = std::chrono::duration<double>(now - b.last).count();
                b.tokens = std::min(opt_.tenant_burst, b.tokens + dt * opt_.tenant_rate);
                b.last = now;
            }
            if (b.tokens < 1.0) {
                im.overloaded_tenant.fetch_add(1, std::memory_order_relaxed);
                c.out += error_frame(kind, util::ErrorCode::serve_overloaded,
                                     "tenant '" + tenant + "' is over its request rate");
                return;
            }
            b.tokens -= 1.0;
        }

        im.requests_admitted.fetch_add(1, std::memory_order_relaxed);
        im.queued_or_running.fetch_add(1, std::memory_order_relaxed);
        ++c.in_flight;
        {
            std::lock_guard<std::mutex> lock(im.work_mutex);
            im.work.push_back(Impl::WorkItem{conn_id, std::move(payload)});
        }
        im.work_cv.notify_one();
    };

    const auto parse_frames = [&](std::uint64_t conn_id, Impl::Conn& c) {
        while (!c.closing) {
            FrameKind kind = FrameKind::request;
            std::string payload;
            std::size_t consumed = 0;
            try {
                consumed = try_unframe(c.in, &kind, &payload, opt_.max_frame_bytes);
            } catch (const ProtocolError& e) {
                im.protocol_errors.fetch_add(1, std::memory_order_relaxed);
                c.out += error_frame(rom::RequestKind::frequency_sweep, error_code(e.kind()),
                                     e.what());
                if (e.kind() == ProtocolErrorKind::checksum_mismatch) {
                    // The header survived its checks, so the frame boundary
                    // is trustworthy: skip the damaged frame and keep the
                    // connection alive.
                    std::uint64_t payload_size = 0;
                    std::memcpy(&payload_size, c.in.data() + 13, sizeof(payload_size));
                    c.in.erase(0, kFrameHeaderBytes + static_cast<std::size_t>(payload_size) +
                                      kFrameChecksumBytes);
                    continue;
                }
                // Broken framing: no trustworthy next boundary. Flush the
                // typed error, then close.
                c.closing = true;
                c.in.clear();
                break;
            }
            if (consumed == 0) break;  // incomplete frame: wait for more bytes
            c.in.erase(0, consumed);
            if (kind != FrameKind::request) {
                im.protocol_errors.fetch_add(1, std::memory_order_relaxed);
                c.out += error_frame(rom::RequestKind::frequency_sweep,
                                     util::ErrorCode::proto_corrupt,
                                     "daemon received a response frame");
                c.closing = true;
                c.in.clear();
                break;
            }
            admit(conn_id, c, std::move(payload));
        }
    };

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conn id per pollfd slot (0: not a conn)
    char buf[64 * 1024];

    while (true) {
        const bool draining = im.stop_requested.load(std::memory_order_acquire);

        // Close connections with nothing left to do (drain closes idle ones).
        for (auto it = im.conns.begin(); it != im.conns.end();) {
            Impl::Conn& c = it->second;
            const bool flushed = c.out_off >= c.out.size();
            const bool done = c.in_flight == 0 && flushed && (c.closing || c.read_closed || draining);
            if (done) {
                ::close(c.fd);
                it = im.conns.erase(it);
            } else {
                ++it;
            }
        }

        if (draining && im.conns.empty() &&
            im.queued_or_running.load(std::memory_order_relaxed) == 0)
            break;

        fds.clear();
        fd_conn.clear();
        fds.push_back(pollfd{im.wake_read, POLLIN, 0});
        fd_conn.push_back(0);
        if (!draining) {
            fds.push_back(pollfd{im.listen_fd, POLLIN, 0});
            fd_conn.push_back(0);
        }
        for (auto& [id, c] : im.conns) {
            short events = 0;
            if (!draining && !c.closing && !c.read_closed) events |= POLLIN;
            if (c.out_off < c.out.size()) events |= POLLOUT;
            fds.push_back(pollfd{c.fd, events, 0});
            fd_conn.push_back(id);
        }

        // Finite timeout as a lost-wakeup backstop; every state change also
        // pokes the wake pipe.
        ::poll(fds.data(), fds.size(), 250);

        // Drain the wake pipe.
        if (fds[0].revents & POLLIN)
            while (::read(im.wake_read, buf, sizeof(buf)) > 0) {
            }

        // Completions: append response frames, release in-flight slots.
        std::deque<Impl::Completion> done;
        {
            std::lock_guard<std::mutex> lock(im.done_mutex);
            done.swap(im.done);
        }
        for (Impl::Completion& d : done) {
            im.responses_sent.fetch_add(1, std::memory_order_relaxed);
            if (draining) im.drained_requests.fetch_add(1, std::memory_order_relaxed);
            im.queued_or_running.fetch_sub(1, std::memory_order_relaxed);
            auto it = im.conns.find(d.conn);
            if (it == im.conns.end()) continue;  // connection died before its answer
            it->second.out += d.frame;
            --it->second.in_flight;
        }

        // Accept new connections.
        if (!draining) {
            while (true) {
                const int cfd = ::accept(im.listen_fd, nullptr, nullptr);
                if (cfd < 0) break;
                set_nonblocking(cfd);
                const int one = 1;
                ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
                im.connections_accepted.fetch_add(1, std::memory_order_relaxed);
                Impl::Conn c;
                c.fd = cfd;
                im.conns.emplace(im.next_conn_id++, std::move(c));
            }
        }

        // Per-connection IO.
        for (std::size_t i = 1; i < fds.size(); ++i) {
            if (fd_conn[i] == 0) continue;
            auto it = im.conns.find(fd_conn[i]);
            if (it == im.conns.end()) continue;
            Impl::Conn& c = it->second;
            bool dead = false;
            if (fds[i].revents & (POLLERR | POLLNVAL)) dead = true;
            if (!dead && (fds[i].revents & POLLIN)) {
                while (true) {
                    const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
                    if (n > 0) {
                        c.in.append(buf, static_cast<std::size_t>(n));
                        continue;
                    }
                    if (n == 0) {
                        c.read_closed = true;
                        break;
                    }
                    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                    dead = true;
                    break;
                }
                if (!dead) parse_frames(fd_conn[i], c);
            }
            if (!dead && (c.out_off < c.out.size())) dead = !flush(c);
            if (dead) {
                // A vanished peer abandons its in-flight requests: release
                // their slots now so drain termination never waits on
                // answers with nowhere to go (their completions are dropped
                // on arrival).
                ::close(c.fd);
                im.conns.erase(it);
            }
        }
    }

    // Drain complete: release the workers (they exit once the queue -- by
    // now empty -- is drained) and tear the sockets down.
    {
        std::lock_guard<std::mutex> lock(im.work_mutex);
        im.workers_done = true;
    }
    im.work_cv.notify_all();
    ::close(im.listen_fd);
    im.listen_fd = -1;
    ::close(im.wake_read);
    im.wake_read = -1;
    // wake_write stays open: request_stop() may still be called (e.g. a late
    // signal) and must stay safe; the fd is reclaimed in the destructor.
}

}  // namespace atmor::net
