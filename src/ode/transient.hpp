// Transient simulation of QLDAE systems (full models and ROMs alike).
//
// The quadratised circuits carry e^{40 v} diode laws in their G2 rows, which
// makes the dynamics stiff; the default integrator is therefore an implicit
// trapezoidal rule with a modified Newton corrector (Jacobian frozen until
// convergence degrades -- factor once, backsolve thousands of times). RK4 and
// adaptive RKF45 are provided for non-stiff cases and cross-checks. Solve
// statistics feed the paper's Table 1 "ODE solve" timing comparison.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "la/matrix.hpp"
#include "la/solver_backend.hpp"
#include "volterra/qldae.hpp"

namespace atmor::ode {

/// Input signal u(t) (length = system inputs).
using InputFn = std::function<la::Vec(double)>;

enum class Method { rk4, rkf45, trapezoidal, backward_euler };

struct TransientOptions {
    double t_end = 1.0;
    double dt = 1e-3;                ///< fixed step (rk4/implicit); initial step (rkf45)
    Method method = Method::trapezoidal;
    int record_stride = 1;           ///< record every k-th step
    double newton_tol = 1e-10;
    int newton_max_iter = 25;
    double rkf_tol = 1e-8;           ///< local error tolerance for rkf45
    double dt_min = 1e-12;
    double dt_max = 0.0;             ///< 0 => 100*dt
    /// Refactor the Newton Jacobian at every implicit step (standard
    /// SPICE-style Newton; the O(n^3)-per-step regime the paper's Table 1
    /// timings live in). Default reuses the factor until convergence
    /// degrades (modified Newton).
    bool refactor_every_step = false;
    /// Linear solver for the implicit Newton systems (I - theta*h*J) dx = r.
    /// nullptr selects the default: sparse LU for sparse-first systems,
    /// dense LU otherwise (la::make_default_backend). The Jacobian factors
    /// once per refactor and replays through the backend cache across Newton
    /// iterations and steps.
    std::shared_ptr<la::SolverBackend> backend;
};

struct TransientResult {
    std::vector<double> t;           ///< recorded times
    std::vector<la::Vec> y;          ///< recorded outputs (C x)
    la::Vec x_final;                 ///< state at t_end
    double solve_seconds = 0.0;      ///< wall time of the integration loop
    long steps = 0;
    long newton_iterations = 0;
    long factorizations = 0;

    /// Output sample (output_index) at record r.
    [[nodiscard]] double output(int r, int output_index = 0) const {
        return y[static_cast<std::size_t>(r)][static_cast<std::size_t>(output_index)];
    }
};

/// Simulate the QLDAE from x(0) = x0 (zero if empty).
TransientResult simulate(const volterra::Qldae& sys, const InputFn& input,
                         const TransientOptions& opt, const la::Vec& x0 = {});

/// Reusable warm start for the implicit batch runner: the shared Newton
/// Jacobian factorisation plus the backend it came from. make_warm_start
/// stamps it once; every subsequent simulate_batch replay of the same
/// (system, step size, method) skips the stamp entirely -- the serving hot
/// loop (rom::ServeEngine) pays the factorisation exactly once per model.
/// Empty (null factorization) for the explicit methods.
struct WarmStart {
    std::shared_ptr<la::SolverBackend> backend;
    std::shared_ptr<const la::Factorization> factorization;
};

/// Stamp the implicit-method warm start at linearisation point (x0, u0)
/// (both default to zero). The handle is immutable and safe to share across
/// concurrent batches.
WarmStart make_warm_start(const volterra::Qldae& sys, const TransientOptions& opt,
                          const la::Vec& u0 = {}, const la::Vec& x0 = {});

/// Batched scenario runner: simulate many input waveforms of the SAME system
/// in parallel on the global thread pool. For the implicit methods, one
/// Newton Jacobian is stamped at (x0, inputs[0](0)) and its factorisation is
/// shared read-only across all scenarios/threads as their warm start; a
/// scenario whose Newton degrades refactors privately (modified-Newton
/// recovery), so outlier waveforms never perturb the others. Results land in
/// input order, and each trace is identical to the corresponding serial
/// simulate() call with the same warm start. An empty batch is a typed
/// PreconditionError (a silent empty result hides a caller bug).
std::vector<TransientResult> simulate_batch(const volterra::Qldae& sys,
                                            const std::vector<InputFn>& inputs,
                                            const TransientOptions& opt,
                                            const la::Vec& x0 = {});

/// Replay form: same contract, but the warm start is supplied by the caller
/// (from make_warm_start) instead of stamped per call. opt.dt/t_end/method
/// must match the options the warm start was stamped with for the factors to
/// be a useful starting Jacobian; correctness never depends on it (a scenario
/// whose Newton degrades refactors privately).
std::vector<TransientResult> simulate_batch(const volterra::Qldae& sys,
                                            const std::vector<InputFn>& inputs,
                                            const TransientOptions& opt, const WarmStart& warm,
                                            const la::Vec& x0 = {});

/// Peak relative error between two recorded output traces, normalised by the
/// peak magnitude of the reference (the error measure of the paper's figures).
double peak_relative_error(const TransientResult& reference, const TransientResult& test,
                           int output_index = 0);

/// Pointwise relative-error trace |y_ref - y_test| / max|y_ref|.
std::vector<double> relative_error_trace(const TransientResult& reference,
                                         const TransientResult& test, int output_index = 0);

}  // namespace atmor::ode
