#include "ode/transient.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "la/operator.hpp"
#include "la/solver_backend.hpp"
#include "la/vector_ops.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace atmor::ode {

using la::Matrix;
using la::Vec;
using volterra::Qldae;

namespace {

void record(TransientResult& res, const Qldae& sys, double t, const Vec& x) {
    res.t.push_back(t);
    res.y.push_back(sys.output(x));
}

Vec rk4_step(const Qldae& sys, const InputFn& u, double t, double h, const Vec& x) {
    const Vec k1 = sys.rhs(x, u(t));
    Vec x2 = x;
    la::axpy(0.5 * h, k1, x2);
    const Vec k2 = sys.rhs(x2, u(t + 0.5 * h));
    Vec x3 = x;
    la::axpy(0.5 * h, k2, x3);
    const Vec k3 = sys.rhs(x3, u(t + 0.5 * h));
    Vec x4 = x;
    la::axpy(h, k3, x4);
    const Vec k4 = sys.rhs(x4, u(t + h));
    Vec out = x;
    for (std::size_t i = 0; i < x.size(); ++i)
        out[i] += (h / 6.0) * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
    return out;
}

TransientResult run_rk4(const Qldae& sys, const InputFn& u, const TransientOptions& opt,
                        Vec x) {
    TransientResult res;
    const long nsteps = std::lround(std::ceil(opt.t_end / opt.dt));
    const double h = opt.t_end / static_cast<double>(nsteps);
    record(res, sys, 0.0, x);
    for (long s = 0; s < nsteps; ++s) {
        const double t = h * static_cast<double>(s);
        x = rk4_step(sys, u, t, h, x);
        ++res.steps;
        if ((s + 1) % opt.record_stride == 0 || s + 1 == nsteps)
            record(res, sys, t + h, x);
    }
    res.x_final = std::move(x);
    return res;
}

TransientResult run_rkf45(const Qldae& sys, const InputFn& u, const TransientOptions& opt,
                          Vec x) {
    // Fehlberg 4(5) pair.
    static constexpr double a2 = 0.25, a3 = 3.0 / 8.0, a4 = 12.0 / 13.0, a5 = 1.0,
                            a6 = 0.5;
    static constexpr double b21 = 0.25;
    static constexpr double b31 = 3.0 / 32.0, b32 = 9.0 / 32.0;
    static constexpr double b41 = 1932.0 / 2197.0, b42 = -7200.0 / 2197.0,
                            b43 = 7296.0 / 2197.0;
    static constexpr double b51 = 439.0 / 216.0, b52 = -8.0, b53 = 3680.0 / 513.0,
                            b54 = -845.0 / 4104.0;
    static constexpr double b61 = -8.0 / 27.0, b62 = 2.0, b63 = -3544.0 / 2565.0,
                            b64 = 1859.0 / 4104.0, b65 = -11.0 / 40.0;
    static constexpr double c41 = 25.0 / 216.0, c43 = 1408.0 / 2565.0, c44 = 2197.0 / 4104.0,
                            c45 = -0.2;
    static constexpr double c51 = 16.0 / 135.0, c53 = 6656.0 / 12825.0,
                            c54 = 28561.0 / 56430.0, c55 = -9.0 / 50.0, c56 = 2.0 / 55.0;

    TransientResult res;
    record(res, sys, 0.0, x);
    double t = 0.0;
    double h = opt.dt;
    const double h_max = opt.dt_max > 0.0 ? opt.dt_max : 100.0 * opt.dt;
    long since_record = 0;
    const std::size_t n = x.size();
    while (t < opt.t_end) {
        h = std::min(h, opt.t_end - t);
        const Vec k1 = sys.rhs(x, u(t));
        Vec xs = x;
        la::axpy(h * b21, k1, xs);
        const Vec k2 = sys.rhs(xs, u(t + a2 * h));
        xs = x;
        la::axpy(h * b31, k1, xs);
        la::axpy(h * b32, k2, xs);
        const Vec k3 = sys.rhs(xs, u(t + a3 * h));
        xs = x;
        la::axpy(h * b41, k1, xs);
        la::axpy(h * b42, k2, xs);
        la::axpy(h * b43, k3, xs);
        const Vec k4 = sys.rhs(xs, u(t + a4 * h));
        xs = x;
        la::axpy(h * b51, k1, xs);
        la::axpy(h * b52, k2, xs);
        la::axpy(h * b53, k3, xs);
        la::axpy(h * b54, k4, xs);
        const Vec k5 = sys.rhs(xs, u(t + a5 * h));
        xs = x;
        la::axpy(h * b61, k1, xs);
        la::axpy(h * b62, k2, xs);
        la::axpy(h * b63, k3, xs);
        la::axpy(h * b64, k4, xs);
        la::axpy(h * b65, k5, xs);
        const Vec k6 = sys.rhs(xs, u(t + a6 * h));

        double err = 0.0, scale = 0.0;
        Vec x5(n);
        for (std::size_t i = 0; i < n; ++i) {
            const double y4 = x[i] + h * (c41 * k1[i] + c43 * k3[i] + c44 * k4[i] + c45 * k5[i]);
            const double y5 = x[i] + h * (c51 * k1[i] + c53 * k3[i] + c54 * k4[i] +
                                          c55 * k5[i] + c56 * k6[i]);
            x5[i] = y5;
            err = std::max(err, std::abs(y5 - y4));
            scale = std::max(scale, std::abs(y5));
        }
        const double tol = opt.rkf_tol * (1.0 + scale);
        if (err <= tol || h <= opt.dt_min) {
            t += h;
            x = std::move(x5);
            ++res.steps;
            if (++since_record >= opt.record_stride || t >= opt.t_end) {
                record(res, sys, t, x);
                since_record = 0;
            }
        }
        const double factor = (err > 0.0) ? 0.9 * std::pow(tol / err, 0.2) : 2.0;
        h = std::clamp(h * std::clamp(factor, 0.1, 4.0), opt.dt_min, h_max);
        ATMOR_CHECK(res.steps < 100000000L, "rkf45: step explosion");
    }
    res.x_final = std::move(x);
    return res;
}

/// The scaled Newton-system operator theta*h*J stamped at a linearisation
/// point; I - theta*h*J is then (shift*I - A) with shift = 1. Sparse systems
/// stamp the Jacobian as COO; dense systems materialise it.
std::shared_ptr<const la::LinearOperator> stamp_newton_operator(const Qldae& sys,
                                                                const Vec& x_lin,
                                                                const Vec& u_lin,
                                                                double theta_h) {
    if (sys.is_sparse()) {
        return la::make_sparse_operator(
            sparse::CsrMatrix(sys.jacobian_coo(x_lin, u_lin, theta_h)));
    }
    Matrix j = sys.jacobian(x_lin, u_lin);
    j *= theta_h;
    return la::make_dense_operator(std::move(j));
}

/// Implicit one-step methods (trapezoidal / backward Euler) with a modified
/// Newton corrector. theta = 1/2 gives trapezoidal, theta = 1 backward Euler.
/// @param warm optional pre-built factorisation of I - theta*h*J shared
///        read-only with other scenarios of a batch; this run refactors
///        privately the moment convergence degrades.
TransientResult run_implicit(const Qldae& sys, const InputFn& u, const TransientOptions& opt,
                             Vec x, double theta,
                             std::shared_ptr<la::SolverBackend> backend = nullptr,
                             std::shared_ptr<const la::Factorization> warm = nullptr) {
    TransientResult res;
    const long nsteps = std::lround(std::ceil(opt.t_end / opt.dt));
    const double h = opt.t_end / static_cast<double>(nsteps);
    record(res, sys, 0.0, x);

    // Newton matrix I - theta*h*J == (shift*I - A) with shift = 1 and
    // A = theta*h*J: exactly the shifted form the solver backend caches.
    // The factorisation is reused across Newton iterations and steps until
    // `refactor` is called.
    if (!backend) backend = opt.backend ? opt.backend : la::make_default_backend(sys.g1_op());
    std::shared_ptr<const la::Factorization> jac_fact = std::move(warm);
    auto refactor = [&](const Vec& x_lin, const Vec& u_lin) {
        const auto a_op = stamp_newton_operator(sys, x_lin, u_lin, theta * h);
        // Uncached factorisation: the operator is freshly stamped, so its id
        // would never be looked up again and would only pollute the cache.
        jac_fact = backend->factorize(*a_op, la::Complex(1.0, 0.0));
        ++res.factorizations;
    };

    for (long s = 0; s < nsteps; ++s) {
        const double t = h * static_cast<double>(s);
        const Vec u0 = u(t);
        const Vec u1 = u(t + h);
        const Vec f0 = sys.rhs(x, u0);

        // Predictor: forward Euler.
        Vec xn = x;
        la::axpy(h, f0, xn);

        if (!jac_fact || opt.refactor_every_step) refactor(x, u1);
        bool converged = false;
        for (int attempt = 0; attempt < 2 && !converged; ++attempt) {
            for (int it = 0; it < opt.newton_max_iter; ++it) {
                // r = xn - x - h*[(1-theta) f0 + theta f(xn, u1)].
                Vec r = xn;
                la::axpy(-1.0, x, r);
                la::axpy(-h * (1.0 - theta), f0, r);
                la::axpy(-h * theta, sys.rhs(xn, u1), r);
                ++res.newton_iterations;
                const double rnorm = la::norm_inf(r);
                const double xnorm = la::norm_inf(xn);
                if (rnorm <= opt.newton_tol * (1.0 + xnorm)) {
                    converged = true;
                    break;
                }
                const Vec dx = jac_fact->solve(r);
                la::axpy(-1.0, dx, xn);
            }
            // Modified-Newton recovery: refresh the Jacobian at the current
            // iterate and retry once before giving up.
            if (!converged) refactor(xn, u1);
        }
        ATMOR_CHECK(converged, "implicit integrator: Newton failed at t = " << t + h);
        x = std::move(xn);
        ++res.steps;
        if ((s + 1) % opt.record_stride == 0 || s + 1 == nsteps) record(res, sys, t + h, x);
    }
    res.x_final = std::move(x);
    return res;
}

}  // namespace

TransientResult simulate(const Qldae& sys, const InputFn& input, const TransientOptions& opt,
                         const Vec& x0) {
    ATMOR_REQUIRE(opt.t_end > 0.0 && opt.dt > 0.0, "simulate: need positive t_end and dt");
    ATMOR_REQUIRE(opt.record_stride >= 1, "simulate: record_stride >= 1");
    Vec x = x0.empty() ? Vec(static_cast<std::size_t>(sys.order()), 0.0) : x0;
    ATMOR_REQUIRE(static_cast<int>(x.size()) == sys.order(), "simulate: x0 size mismatch");
    ATMOR_REQUIRE(static_cast<int>(input(0.0).size()) == sys.inputs(),
                  "simulate: input arity mismatch");

    util::Timer timer;
    TransientResult res;
    switch (opt.method) {
        case Method::rk4:
            res = run_rk4(sys, input, opt, std::move(x));
            break;
        case Method::rkf45:
            res = run_rkf45(sys, input, opt, std::move(x));
            break;
        case Method::trapezoidal:
            res = run_implicit(sys, input, opt, std::move(x), 0.5);
            break;
        case Method::backward_euler:
            res = run_implicit(sys, input, opt, std::move(x), 1.0);
            break;
    }
    res.solve_seconds = timer.seconds();
    return res;
}

WarmStart make_warm_start(const Qldae& sys, const TransientOptions& opt, const la::Vec& u0,
                          const la::Vec& x0) {
    ATMOR_REQUIRE(opt.t_end > 0.0 && opt.dt > 0.0, "make_warm_start: need positive t_end and dt");
    const Vec x = x0.empty() ? Vec(static_cast<std::size_t>(sys.order()), 0.0) : x0;
    ATMOR_REQUIRE(static_cast<int>(x.size()) == sys.order(), "make_warm_start: x0 size mismatch");
    const Vec u = u0.empty() ? Vec(static_cast<std::size_t>(sys.inputs()), 0.0) : u0;
    ATMOR_REQUIRE(static_cast<int>(u.size()) == sys.inputs(),
                  "make_warm_start: u0 size mismatch");

    WarmStart warm;
    warm.backend = opt.backend ? opt.backend : la::make_default_backend(sys.g1_op());
    const bool implicit =
        opt.method == Method::trapezoidal || opt.method == Method::backward_euler;
    if (!implicit) return warm;  // explicit methods have nothing to warm
    const double theta = opt.method == Method::backward_euler ? 1.0 : 0.5;
    const long nsteps = std::lround(std::ceil(opt.t_end / opt.dt));
    const double h = opt.t_end / static_cast<double>(nsteps);
    const auto a_op = stamp_newton_operator(sys, x, u, theta * h);
    warm.factorization = warm.backend->factorize(*a_op, la::Complex(1.0, 0.0));
    return warm;
}

std::vector<TransientResult> simulate_batch(const Qldae& sys, const std::vector<InputFn>& inputs,
                                            const TransientOptions& opt, const la::Vec& x0) {
    ATMOR_REQUIRE(!inputs.empty(), "simulate_batch: empty waveform batch");
    // One Jacobian factorisation, stamped at the shared initial state, serves
    // every scenario as its Newton warm start (see make_warm_start).
    return simulate_batch(sys, inputs, opt, make_warm_start(sys, opt, inputs[0](0.0), x0), x0);
}

std::vector<TransientResult> simulate_batch(const Qldae& sys, const std::vector<InputFn>& inputs,
                                            const TransientOptions& opt, const WarmStart& warm,
                                            const la::Vec& x0) {
    ATMOR_REQUIRE(!inputs.empty(), "simulate_batch: empty waveform batch");
    ATMOR_REQUIRE(opt.t_end > 0.0 && opt.dt > 0.0, "simulate_batch: need positive t_end and dt");
    ATMOR_REQUIRE(opt.record_stride >= 1, "simulate_batch: record_stride >= 1");
    const Vec x = x0.empty() ? Vec(static_cast<std::size_t>(sys.order()), 0.0) : x0;
    ATMOR_REQUIRE(static_cast<int>(x.size()) == sys.order(), "simulate_batch: x0 size mismatch");
    for (const InputFn& u : inputs)
        ATMOR_REQUIRE(static_cast<int>(u(0.0).size()) == sys.inputs(),
                      "simulate_batch: input arity mismatch");

    const double theta = opt.method == Method::backward_euler ? 1.0 : 0.5;
    // The warm handle is immutable, so the threads solve against it
    // concurrently without locking; scenarios whose waveforms drive the state
    // far from the linearisation point refactor privately inside
    // run_implicit.
    std::shared_ptr<la::SolverBackend> backend =
        warm.backend ? warm.backend
                     : (opt.backend ? opt.backend : la::make_default_backend(sys.g1_op()));

    return util::ThreadPool::global().parallel_map<TransientResult>(
        0, static_cast<long>(inputs.size()), [&](long p) {
            const InputFn& u = inputs[static_cast<std::size_t>(p)];
            util::Timer timer;
            TransientResult res;
            switch (opt.method) {
                case Method::rk4:
                    res = run_rk4(sys, u, opt, x);
                    break;
                case Method::rkf45:
                    res = run_rkf45(sys, u, opt, x);
                    break;
                case Method::trapezoidal:
                case Method::backward_euler:
                    res = run_implicit(sys, u, opt, x, theta, backend, warm.factorization);
                    break;
            }
            res.solve_seconds = timer.seconds();
            return res;
        });
}

double peak_relative_error(const TransientResult& reference, const TransientResult& test,
                           int output_index) {
    const auto trace = relative_error_trace(reference, test, output_index);
    double peak = 0.0;
    for (double e : trace) peak = std::max(peak, e);
    return peak;
}

std::vector<double> relative_error_trace(const TransientResult& reference,
                                         const TransientResult& test, int output_index) {
    ATMOR_REQUIRE(reference.t.size() == test.t.size(),
                  "relative_error_trace: traces must share the time grid ("
                      << reference.t.size() << " vs " << test.t.size() << ")");
    double scale = 0.0;
    for (std::size_t r = 0; r < reference.t.size(); ++r)
        scale = std::max(scale, std::abs(reference.output(static_cast<int>(r), output_index)));
    if (scale == 0.0) scale = 1.0;
    std::vector<double> out(reference.t.size());
    for (std::size_t r = 0; r < reference.t.size(); ++r)
        out[r] = std::abs(reference.output(static_cast<int>(r), output_index) -
                          test.output(static_cast<int>(r), output_index)) /
                 scale;
    return out;
}

}  // namespace atmor::ode
