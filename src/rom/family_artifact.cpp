#include "rom/family_artifact.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "la/matrix.hpp"
#include "rom/io.hpp"
#include "util/check.hpp"

namespace atmor::rom {

namespace {

constexpr char kMagic[8] = {'A', 'T', 'M', 'O', 'R', 'R', 'O', 'M'};
constexpr std::size_t kEnvelopeHeader = sizeof(kMagic) + sizeof(std::uint32_t) +
                                        sizeof(std::uint64_t);
constexpr std::size_t kEnvelopeChecksum = sizeof(std::uint64_t);
/// Payload offset of the u64 header_bytes field (kind, layout, tier bytes
/// precede it); patched after the directory length is known.
constexpr std::size_t kHeaderBytesOffset = 3;

[[noreturn]] void fail(IoErrorKind kind, const std::string& what) {
    throw IoError(kind, std::string("rom::family_artifact: ") + what);
}

std::string hex16(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = digits[v & 0xf];
        v >>= 4;
    }
    return s;
}

bool eager_load_forced() {
    const char* v = std::getenv("ATMOR_EAGER_LOAD");
    return v != nullptr && v[0] == '1';
}

// -- Directory model (parsed form of the sectioned layout). -----------------

struct BlockRef {
    std::uint8_t storage = 0;  ///< 0 inline, 1 external
    std::uint64_t offset = 0;  ///< inline: relative to the block region
    std::uint64_t bytes = 0;
    std::uint64_t hash = 0;
};

struct GroupRef {
    std::uint32_t block = 0;
    std::int32_t rows = 0;
    std::int32_t cols = 0;
};

struct MemberRef {
    pmor::Point coords;
    double certified_error = 0.0;
    double coverage_radius = 0.0;
    double encoding_error = 0.0;
    double basis_error = 0.0;
    std::uint32_t basis_group = 0;
    std::uint32_t coeff_block = 0;
    std::int32_t coeff_rows = 0;
    std::int32_t coeff_cols = 0;
    std::uint32_t meta_block = 0;
};

struct SectionedHeader {
    EncodingTier tier = EncodingTier::f64;
    std::uint64_t header_bytes = 0;  ///< where the block region begins
    std::string family_id;
    pmor::ParamSpace space;
    double tol = 0.0;
    std::int32_t training_grid_per_dim = 0;
    double max_training_error = 0.0;
    bool converged = false;
    std::vector<BlockRef> blocks;
    std::vector<GroupRef> groups;
    std::vector<MemberRef> members;
    std::vector<CoverageCell> cells;
};

/// Parse and INTEGRITY-CHECK the directory of a sectioned payload. Touches
/// only payload[0, header_bytes) -- the lazy reader's whole cold-start read
/// set -- and validates every cross-reference (block indices, dimensions
/// against block sizes, cell member indices), so later block fetches only
/// have to verify content hashes.
SectionedHeader parse_sectioned_header(const char* payload, std::size_t payload_len) {
    if (payload_len < kHeaderBytesOffset + 2 * sizeof(std::uint64_t))
        fail(IoErrorKind::truncated, "payload too small for a sectioned directory");
    std::uint64_t header_bytes = 0;
    std::memcpy(&header_bytes, payload + kHeaderBytesOffset, sizeof(header_bytes));
    if (header_bytes > payload_len)
        fail(IoErrorKind::truncated, "directory extends past the end of the payload");
    if (header_bytes < kHeaderBytesOffset + 2 * sizeof(std::uint64_t))
        fail(IoErrorKind::corrupt, "directory smaller than its fixed fields");

    const std::size_t dir_len = static_cast<std::size_t>(header_bytes) - sizeof(std::uint64_t);
    std::uint64_t stored = 0;
    std::memcpy(&stored, payload + dir_len, sizeof(stored));
    if (fnv1a(payload, dir_len) != stored)
        fail(IoErrorKind::checksum_mismatch, "directory checksum mismatch");

    // The directory is small (no member payloads); copy it so Reader's
    // bounds checks apply and the mapping is never read past header_bytes.
    const std::string dir(payload, dir_len);
    Reader r(dir, kFormatVersion);
    SectionedHeader h;
    r.expect_kind(PayloadKind::family);
    if (r.u8() != static_cast<std::uint8_t>(FamilyLayout::sectioned))
        fail(IoErrorKind::corrupt, "payload is not a sectioned family");
    const std::uint8_t tier = r.u8();
    if (tier > static_cast<std::uint8_t>(EncodingTier::q8))
        fail(IoErrorKind::corrupt, "unknown encoding tier tag " + std::to_string(tier));
    h.tier = static_cast<EncodingTier>(tier);
    h.header_bytes = r.u64();
    if (h.header_bytes != header_bytes)
        fail(IoErrorKind::corrupt, "inconsistent header_bytes field");
    h.family_id = r.str();
    h.space = r.param_space();
    h.tol = r.f64();
    h.training_grid_per_dim = r.i32();
    h.max_training_error = r.f64();
    const std::uint8_t conv = r.u8();
    if (conv > 1) fail(IoErrorKind::corrupt, "family converged flag not 0/1");
    h.converged = conv == 1;

    const std::size_t region = payload_len - static_cast<std::size_t>(header_bytes);
    const std::uint32_t nblocks = r.u32();
    h.blocks.reserve(nblocks);
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        BlockRef b;
        b.storage = r.u8();
        if (b.storage > 1) fail(IoErrorKind::corrupt, "unknown block storage tag");
        b.offset = r.u64();
        b.bytes = r.u64();
        b.hash = r.u64();
        if (b.storage == 0 && (b.offset > region || b.bytes > region - b.offset))
            fail(IoErrorKind::truncated,
                 "inline block " + std::to_string(i) + " extends past the end of the payload");
        h.blocks.push_back(b);
    }

    const std::uint32_t ngroups = r.u32();
    h.groups.reserve(ngroups);
    for (std::uint32_t i = 0; i < ngroups; ++i) {
        GroupRef g;
        g.block = r.u32();
        g.rows = r.i32();
        g.cols = r.i32();
        if (g.block >= h.blocks.size())
            fail(IoErrorKind::corrupt, "basis group references a missing block");
        if (g.rows < 0 || g.cols < 0)
            fail(IoErrorKind::corrupt, "negative basis group dimension");
        if (h.blocks[g.block].bytes != encoded_matrix_bytes(g.rows, g.cols, h.tier))
            fail(IoErrorKind::corrupt, "basis block size disagrees with the group dimensions");
        h.groups.push_back(g);
    }

    const std::size_t ndims = static_cast<std::size_t>(h.space.dims());
    const std::uint32_t nmembers = r.u32();
    h.members.reserve(nmembers);
    for (std::uint32_t i = 0; i < nmembers; ++i) {
        MemberRef m;
        const std::uint64_t nc = r.u64();
        if (nc != ndims)
            fail(IoErrorKind::corrupt, "member coordinate count disagrees with the space");
        m.coords.reserve(ndims);
        for (std::size_t c = 0; c < ndims; ++c) m.coords.push_back(r.f64());
        m.certified_error = r.f64();
        m.coverage_radius = r.f64();
        m.encoding_error = r.f64();
        m.basis_error = r.f64();
        m.basis_group = r.u32();
        m.coeff_block = r.u32();
        m.coeff_rows = r.i32();
        m.coeff_cols = r.i32();
        m.meta_block = r.u32();
        if (m.basis_group >= h.groups.size())
            fail(IoErrorKind::corrupt, "member references a missing basis group");
        if (m.coeff_block >= h.blocks.size() || m.meta_block >= h.blocks.size())
            fail(IoErrorKind::corrupt, "member references a missing block");
        if (m.coeff_rows < 0 || m.coeff_cols < 0)
            fail(IoErrorKind::corrupt, "negative member coefficient dimension");
        if (m.coeff_rows != h.groups[m.basis_group].cols)
            fail(IoErrorKind::corrupt, "coefficient rows disagree with the union rank");
        if (h.blocks[m.coeff_block].bytes !=
            encoded_matrix_bytes(m.coeff_rows, m.coeff_cols, h.tier))
            fail(IoErrorKind::corrupt,
                 "coefficient block size disagrees with the member dimensions");
        h.members.push_back(std::move(m));
    }

    h.cells = r.coverage_cells(ndims, static_cast<int>(nmembers));
    if (!r.at_end()) fail(IoErrorKind::corrupt, "trailing bytes after the family directory");
    return h;
}

/// Fetch a block's bytes and verify its content hash. Inline blocks come
/// straight out of the mapped payload; external ones resolve against
/// `block_dir` (the registry's cross-artifact dedup store).
std::string fetch_block(const char* payload, const SectionedHeader& h, std::uint32_t index,
                        const std::string& block_dir) {
    const BlockRef& b = h.blocks[index];
    std::string bytes;
    if (b.storage == 0) {
        bytes.assign(payload + h.header_bytes + b.offset, static_cast<std::size_t>(b.bytes));
    } else {
        if (block_dir.empty())
            fail(IoErrorKind::corrupt,
                 "external block reference in a self-contained artifact");
        const std::string path =
            (std::filesystem::path(block_dir) / (hex16(b.hash) + ".blk")).string();
        std::ifstream in(path, std::ios::binary);
        if (!in) fail(IoErrorKind::open_failed, "cannot open shared block " + path);
        bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
        if (!in.good() && !in.eof())
            fail(IoErrorKind::open_failed, "cannot read shared block " + path);
        if (bytes.size() != b.bytes)
            fail(IoErrorKind::truncated, "shared block " + path + " has " +
                                             std::to_string(bytes.size()) + " bytes, expected " +
                                             std::to_string(b.bytes));
    }
    if (fnv1a(bytes.data(), bytes.size()) != b.hash)
        fail(IoErrorKind::checksum_mismatch,
             "block " + std::to_string(index) + " failed its content hash");
    return bytes;
}

la::Matrix fetch_basis(const char* payload, const SectionedHeader& h, std::uint32_t group,
                       const std::string& block_dir) {
    const GroupRef& g = h.groups[group];
    const std::string bytes = fetch_block(payload, h, g.block, block_dir);
    return decode_matrix_block(bytes.data(), bytes.size(), g.rows, g.cols, h.tier);
}

/// Decode one member against its (already decoded) union basis.
FamilyMember materialize_member(const char* payload, const SectionedHeader& h,
                                std::size_t index, const la::Matrix& basis,
                                const std::string& block_dir) {
    const MemberRef& m = h.members[index];
    const std::string coeff_bytes = fetch_block(payload, h, m.coeff_block, block_dir);
    const la::Matrix coeff = decode_matrix_block(coeff_bytes.data(), coeff_bytes.size(),
                                                 m.coeff_rows, m.coeff_cols, h.tier);
    la::Matrix v = la::matmul_blocked(basis, coeff);
    const std::string meta_bytes = fetch_block(payload, h, m.meta_block, block_dir);
    ReducedModel model =
        decode_member_meta(meta_bytes.data(), meta_bytes.size(), h.tier, std::move(v));
    return FamilyMember{m.coords, m.certified_error, m.coverage_radius, std::move(model)};
}

template <class Range, class CoordsOf>
int nearest(const pmor::ParamSpace& space, const pmor::Point& coords, const Range& items,
            CoordsOf coords_of) {
    int best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const double d = space.distance(coords, coords_of(items[i]));
        if (d < best_dist) {
            best_dist = d;
            best = static_cast<int>(i);
        }
    }
    return best;
}

}  // namespace

// ---------------------------------------------------------------------------
// Serialization.
// ---------------------------------------------------------------------------

std::string serialize_family_artifact(const CompressedFamily& cf,
                                      const BlockExternalizer& externalize) {
    ATMOR_REQUIRE(!cf.members.empty(), "serialize_family_artifact: family has no members");

    // Content-addressed block interning: identical payloads (e.g. two
    // members sharing a coefficient block) are stored once per artifact, and
    // the externalizer can move a block out of the file entirely (the
    // registry's cross-artifact dedup).
    std::vector<BlockRef> blocks;
    std::vector<const std::string*> block_bytes;
    std::unordered_map<std::uint64_t, std::uint32_t> by_hash;
    std::uint64_t inline_offset = 0;
    const auto intern = [&](const std::string& bytes) -> std::uint32_t {
        const std::uint64_t hash = fnv1a(bytes.data(), bytes.size());
        const auto it = by_hash.find(hash);
        if (it != by_hash.end()) {
            ATMOR_REQUIRE(*block_bytes[it->second] == bytes,
                          "serialize_family_artifact: content hash collision");
            return it->second;
        }
        BlockRef b;
        b.hash = hash;
        b.bytes = bytes.size();
        if (externalize && externalize(hash, bytes)) {
            b.storage = 1;
        } else {
            b.storage = 0;
            b.offset = inline_offset;
            inline_offset += bytes.size();
        }
        const std::uint32_t index = static_cast<std::uint32_t>(blocks.size());
        blocks.push_back(b);
        block_bytes.push_back(&bytes);
        by_hash.emplace(hash, index);
        return index;
    };

    std::vector<GroupRef> groups;
    groups.reserve(cf.basis_groups.size());
    for (const BasisGroup& g : cf.basis_groups)
        groups.push_back(GroupRef{intern(g.bytes), g.rows, g.cols});
    struct MemberBlocks {
        std::uint32_t coeff = 0;
        std::uint32_t meta = 0;
    };
    std::vector<MemberBlocks> member_blocks;
    member_blocks.reserve(cf.members.size());
    for (const CompressedMember& m : cf.members)
        member_blocks.push_back(MemberBlocks{intern(m.coeff_bytes), intern(m.meta_bytes)});

    Writer w;
    w.kind(PayloadKind::family);
    w.u8(static_cast<std::uint8_t>(FamilyLayout::sectioned));
    w.u8(static_cast<std::uint8_t>(cf.tier));
    w.u64(0);  // header_bytes, patched below
    w.str(cf.family_id);
    w.param_space(cf.space);
    w.f64(cf.tol);
    w.i32(cf.training_grid_per_dim);
    w.f64(cf.max_training_error);
    w.u8(cf.converged ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(blocks.size()));
    for (const BlockRef& b : blocks) {
        w.u8(b.storage);
        w.u64(b.offset);
        w.u64(b.bytes);
        w.u64(b.hash);
    }
    w.u32(static_cast<std::uint32_t>(groups.size()));
    for (const GroupRef& g : groups) {
        w.u32(g.block);
        w.i32(g.rows);
        w.i32(g.cols);
    }
    w.u32(static_cast<std::uint32_t>(cf.members.size()));
    for (std::size_t i = 0; i < cf.members.size(); ++i) {
        const CompressedMember& m = cf.members[i];
        w.u64(m.coords.size());
        for (double c : m.coords) w.f64(c);
        w.f64(m.certified_error);
        w.f64(m.coverage_radius);
        w.f64(m.encoding_error);
        w.f64(m.basis_error);
        w.u32(m.basis_group);
        w.u32(member_blocks[i].coeff);
        w.i32(m.coeff_rows);
        w.i32(m.coeff_cols);
        w.u32(member_blocks[i].meta);
    }
    w.coverage_cells(cf.cells);

    std::string payload = w.bytes();
    const std::uint64_t header_bytes = payload.size() + sizeof(std::uint64_t);
    std::memcpy(&payload[kHeaderBytesOffset], &header_bytes, sizeof(header_bytes));
    const std::uint64_t checksum = fnv1a(payload.data(), payload.size());
    payload.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    for (std::size_t i = 0; i < blocks.size(); ++i)
        if (blocks[i].storage == 0) payload.append(*block_bytes[i]);
    return frame(payload);
}

void save_family_artifact(const CompressedFamily& cf, const std::string& path) {
    write_file_atomically(serialize_family_artifact(cf), path);
}

namespace detail {

Family family_from_sectioned_payload(const std::string& payload, const std::string& block_dir) {
    const SectionedHeader h = parse_sectioned_header(payload.data(), payload.size());
    Family f;
    f.family_id = h.family_id;
    f.space = h.space;
    f.tol = h.tol;
    f.training_grid_per_dim = h.training_grid_per_dim;
    f.max_training_error = h.max_training_error;
    f.converged = h.converged;
    std::vector<la::Matrix> bases;
    bases.reserve(h.groups.size());
    for (std::uint32_t g = 0; g < h.groups.size(); ++g)
        bases.push_back(fetch_basis(payload.data(), h, g, block_dir));
    f.members.reserve(h.members.size());
    for (std::size_t i = 0; i < h.members.size(); ++i)
        f.members.push_back(materialize_member(payload.data(), h, i,
                                               bases[h.members[i].basis_group], block_dir));
    f.cells = h.cells;
    return f;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// FamilyArtifact.
// ---------------------------------------------------------------------------

struct FamilyArtifact::Impl {
    // -- Lazy (mmap) state. --------------------------------------------------
    void* map = nullptr;
    std::size_t map_len = 0;
    const char* payload = nullptr;  ///< into the mapping
    std::size_t payload_len = 0;
    std::string block_dir;
    SectionedHeader header;
    bool is_lazy = false;

    // -- Eager state (fallback and from_family). -----------------------------
    Family eager;

    std::size_t file_size = 0;

    /// Guards the caches; one thread materializes a given section, everyone
    /// else waits (sections decode in milliseconds, contention is cheap).
    mutable std::mutex mu;
    mutable std::vector<std::shared_ptr<const la::Matrix>> basis_cache;
    mutable std::vector<std::shared_ptr<const FamilyMember>> member_cache;
    mutable std::size_t resident = 0;
    mutable int materialized = 0;

    ~Impl() {
        if (map != nullptr) ::munmap(map, map_len);
    }
};

FamilyArtifact FamilyArtifact::from_family(Family f) {
    auto impl = std::make_shared<Impl>();
    impl->eager = std::move(f);
    impl->resident = atmor::rom::resident_bytes(impl->eager);
    impl->materialized = static_cast<int>(impl->eager.members.size());
    FamilyArtifact a;
    a.impl_ = std::move(impl);
    return a;
}

FamilyArtifact FamilyArtifact::open(const std::string& path) {
    const auto eager_fallback = [&path](std::size_t file_size) {
        FamilyArtifact a = from_family(load_family(path));
        a.impl_->file_size = file_size;
        return a;
    };

    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) fail(IoErrorKind::open_failed, "cannot open " + path);
    struct stat st{};
    if (::fstat(fd, &st) != 0) {
        ::close(fd);
        fail(IoErrorKind::open_failed, "cannot stat " + path);
    }
    const std::size_t len = static_cast<std::size_t>(st.st_size);
    if (eager_load_forced()) {
        ::close(fd);
        return eager_fallback(len);
    }
    if (len < kEnvelopeHeader + kEnvelopeChecksum) {
        ::close(fd);
        fail(IoErrorKind::truncated, path + " is smaller than the artifact header");
    }
    void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map == MAP_FAILED) fail(IoErrorKind::open_failed, "cannot mmap " + path);

    auto impl = std::make_shared<Impl>();
    impl->map = map;
    impl->map_len = len;
    const char* base = static_cast<const char*>(map);

    // Envelope checks mirror unframe(), except the whole-payload checksum:
    // the sectioned layout carries its own directory checksum + per-block
    // hashes, which is what keeps cold-start O(touched members).
    if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0)
        fail(IoErrorKind::bad_magic, path + " is not an atmor ROM artifact");
    std::uint32_t version = 0;
    std::memcpy(&version, base + sizeof(kMagic), sizeof(version));
    if (version < kMinSupportedVersion || version > kFormatVersion)
        fail(IoErrorKind::version_mismatch,
             path + " is format v" + std::to_string(version) + ", supported: v" +
                 std::to_string(kMinSupportedVersion) + "..v" + std::to_string(kFormatVersion));
    std::uint64_t payload_size = 0;
    std::memcpy(&payload_size, base + sizeof(kMagic) + sizeof(version), sizeof(payload_size));
    if (payload_size != len - kEnvelopeHeader - kEnvelopeChecksum)
        fail(IoErrorKind::truncated, path + " payload size disagrees with the file size");
    impl->payload = base + kEnvelopeHeader;
    impl->payload_len = static_cast<std::size_t>(payload_size);

    const bool sectioned =
        version_caps(version).sectioned_family && impl->payload_len >= 2 &&
        impl->payload[0] == static_cast<char>(PayloadKind::family) &&
        impl->payload[1] == static_cast<char>(FamilyLayout::sectioned);
    if (!sectioned) return eager_fallback(len);  // impl (and the mapping) released

    impl->header = parse_sectioned_header(impl->payload, impl->payload_len);
    impl->is_lazy = true;
    impl->file_size = len;
    impl->block_dir =
        (std::filesystem::path(path).parent_path() / "blocks").string();
    impl->basis_cache.resize(impl->header.groups.size());
    impl->member_cache.resize(impl->header.members.size());
    impl->resident = static_cast<std::size_t>(impl->header.header_bytes);
    FamilyArtifact a;
    a.impl_ = std::move(impl);
    return a;
}

const std::string& FamilyArtifact::family_id() const {
    return impl_->is_lazy ? impl_->header.family_id : impl_->eager.family_id;
}
const pmor::ParamSpace& FamilyArtifact::space() const {
    return impl_->is_lazy ? impl_->header.space : impl_->eager.space;
}
double FamilyArtifact::tol() const {
    return impl_->is_lazy ? impl_->header.tol : impl_->eager.tol;
}
int FamilyArtifact::training_grid_per_dim() const {
    return impl_->is_lazy ? impl_->header.training_grid_per_dim
                          : impl_->eager.training_grid_per_dim;
}
double FamilyArtifact::max_training_error() const {
    return impl_->is_lazy ? impl_->header.max_training_error : impl_->eager.max_training_error;
}
bool FamilyArtifact::converged() const {
    return impl_->is_lazy ? impl_->header.converged : impl_->eager.converged;
}
const std::vector<CoverageCell>& FamilyArtifact::cells() const {
    return impl_->is_lazy ? impl_->header.cells : impl_->eager.cells;
}
int FamilyArtifact::member_count() const {
    return impl_->is_lazy ? static_cast<int>(impl_->header.members.size())
                          : static_cast<int>(impl_->eager.members.size());
}
const pmor::Point& FamilyArtifact::member_coords(int i) const {
    ATMOR_REQUIRE(i >= 0 && i < member_count(), "member index out of range");
    return impl_->is_lazy ? impl_->header.members[static_cast<std::size_t>(i)].coords
                          : impl_->eager.members[static_cast<std::size_t>(i)].coords;
}

std::shared_ptr<const FamilyMember> FamilyArtifact::member(int i) const {
    ATMOR_REQUIRE(i >= 0 && i < member_count(), "member index out of range");
    const std::size_t idx = static_cast<std::size_t>(i);
    if (!impl_->is_lazy)
        return std::shared_ptr<const FamilyMember>(impl_, &impl_->eager.members[idx]);

    std::lock_guard<std::mutex> lock(impl_->mu);
    if (impl_->member_cache[idx]) return impl_->member_cache[idx];
    const MemberRef& m = impl_->header.members[idx];
    std::shared_ptr<const la::Matrix>& basis = impl_->basis_cache[m.basis_group];
    if (!basis) {
        basis = std::make_shared<const la::Matrix>(
            fetch_basis(impl_->payload, impl_->header, m.basis_group, impl_->block_dir));
        impl_->resident += static_cast<std::size_t>(basis->rows()) *
                           static_cast<std::size_t>(basis->cols()) * sizeof(double);
    }
    auto member = std::make_shared<const FamilyMember>(
        materialize_member(impl_->payload, impl_->header, idx, *basis, impl_->block_dir));
    impl_->resident += atmor::rom::resident_bytes(member->model);
    ++impl_->materialized;
    impl_->member_cache[idx] = member;
    return member;
}

int FamilyArtifact::locate(const pmor::Point& coords) const {
    return nearest(space(), coords, cells(), [](const CoverageCell& c) { return c.coords; });
}

int FamilyArtifact::nearest_member(const pmor::Point& coords) const {
    if (!impl_->is_lazy)
        return nearest(space(), coords, impl_->eager.members,
                       [](const FamilyMember& m) { return m.coords; });
    return nearest(space(), coords, impl_->header.members,
                   [](const MemberRef& m) { return m.coords; });
}

bool FamilyArtifact::lazy() const { return impl_->is_lazy; }
std::size_t FamilyArtifact::file_bytes() const { return impl_->file_size; }

std::size_t FamilyArtifact::resident_bytes() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->resident;
}

int FamilyArtifact::materialized_members() const {
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->materialized;
}

EncodingTier FamilyArtifact::tier() const {
    return impl_->is_lazy ? impl_->header.tier : EncodingTier::f64;
}

Family FamilyArtifact::to_family() const {
    if (!impl_->is_lazy) return impl_->eager;
    Family f;
    f.family_id = impl_->header.family_id;
    f.space = impl_->header.space;
    f.tol = impl_->header.tol;
    f.training_grid_per_dim = impl_->header.training_grid_per_dim;
    f.max_training_error = impl_->header.max_training_error;
    f.converged = impl_->header.converged;
    f.members.reserve(impl_->header.members.size());
    for (int i = 0; i < member_count(); ++i) f.members.push_back(*member(i));
    f.cells = impl_->header.cells;
    return f;
}

}  // namespace atmor::rom
