#include "rom/registry.hpp"

#include <filesystem>
#include <fstream>
#include <utility>

#include "rom/io.hpp"
#include "util/check.hpp"

namespace atmor::rom {

namespace {

std::string hex16(std::uint64_t v) {
    static const char* digits = "0123456789abcdef";
    std::string out(16, '0');
    for (int i = 15; i >= 0; --i) {
        out[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return out;
}

// The registry's artifact payload is the FULL key followed by the model, so
// a load is accepted only when the stored key matches the requested one --
// a filename-hash collision or a foreign/stale file at the hashed name is
// detected and rebuilt instead of silently serving the wrong model.

void save_entry(const std::string& key, const ReducedModel& model, const std::string& path) {
    Writer w;
    w.kind(PayloadKind::registry_entry);
    w.str(key);
    w.model(model);
    write_file_atomically(frame(w.bytes()), path);
}

ReducedModel load_entry(const std::string& key, const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError(IoErrorKind::open_failed, "registry: cannot read " + path);
    const std::string bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    std::uint32_t version = kFormatVersion;
    const std::string payload = unframe(bytes, &version);
    Reader r(payload, version);
    r.expect_kind(PayloadKind::registry_entry);
    const std::string stored_key = r.str();
    if (stored_key != key)
        throw IoError(IoErrorKind::corrupt, "registry: artifact at " + path + " stores key \"" +
                                                stored_key + "\", not \"" + key + "\"");
    return r.model();
}

}  // namespace

Registry::Registry(RegistryOptions opt) : opt_(std::move(opt)) {
    ATMOR_REQUIRE(opt_.max_memory_models >= 1, "Registry: need at least one memory slot");
    if (!opt_.artifact_dir.empty()) std::filesystem::create_directories(opt_.artifact_dir);
}

std::string Registry::artifact_path(const std::string& key) const {
    if (opt_.artifact_dir.empty()) return {};
    return (std::filesystem::path(opt_.artifact_dir) /
            (hex16(fnv1a(key.data(), key.size())) + kArtifactExtension))
        .string();
}

std::string Registry::family_artifact_path(const std::string& family_id) const {
    if (opt_.artifact_dir.empty()) return {};
    return (std::filesystem::path(opt_.artifact_dir) /
            (hex16(fnv1a(family_id.data(), family_id.size())) + kFamilyExtension))
        .string();
}

std::string Registry::put_family(const CompressedFamily& cf) {
    const std::string path = family_artifact_path(cf.family_id);
    if (path.empty())
        throw IoError(IoErrorKind::open_failed,
                      "registry: family artifacts require the disk tier (artifact_dir)");
    const std::filesystem::path block_dir =
        std::filesystem::path(opt_.artifact_dir) / "blocks";
    std::filesystem::create_directories(block_dir);
    long written = 0;
    long shared = 0;
    const std::string bytes = serialize_family_artifact(
        cf, [&](std::uint64_t hash, const std::string& block) {
            if (block.size() < kExternalBlockBytes) return false;
            const std::string block_path = (block_dir / (hex16(hash) + ".blk")).string();
            if (std::filesystem::exists(block_path)) {
                ++shared;  // identical content already stored by some artifact
            } else {
                write_file_atomically(block, block_path);
                ++written;
            }
            return true;
        });
    write_file_atomically(bytes, path);
    stats_.family_saves.fetch_add(1, std::memory_order_relaxed);
    stats_.blocks_written.fetch_add(written, std::memory_order_relaxed);
    stats_.blocks_shared.fetch_add(shared, std::memory_order_relaxed);
    return path;
}

FamilyArtifact Registry::open_family(const std::string& family_id) {
    const std::string path = family_artifact_path(family_id);
    if (path.empty())
        throw IoError(IoErrorKind::open_failed,
                      "registry: family artifacts require the disk tier (artifact_dir)");
    FamilyArtifact artifact = FamilyArtifact::open(path);
    stats_.family_loads.fetch_add(1, std::memory_order_relaxed);
    return artifact;
}

std::shared_ptr<const ReducedModel> Registry::cached(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = slots_.find(key);
    return it == slots_.end() ? nullptr : it->second->second;
}

void Registry::insert_locked(const std::string& key, ModelPtr model) {
    lru_.emplace_front(key, std::move(model));
    slots_[key] = lru_.begin();
    if (lru_.size() > opt_.max_memory_models) {
        slots_.erase(lru_.back().first);
        lru_.pop_back();
        stats_.evictions.fetch_add(1, std::memory_order_relaxed);
    }
}

std::shared_ptr<const ReducedModel> Registry::get_or_build(const std::string& key,
                                                           const Builder& build) {
    ATMOR_REQUIRE(!key.empty(), "Registry::get_or_build: empty key");
    ATMOR_REQUIRE(static_cast<bool>(build), "Registry::get_or_build: null builder");
    std::promise<ModelPtr> promise;
    stats_.lookups.fetch_add(1, std::memory_order_relaxed);
    {
        std::unique_lock<std::mutex> lock(mutex_);
        auto slot = slots_.find(key);
        if (slot != slots_.end()) {
            lru_.splice(lru_.begin(), lru_, slot->second);  // touch
            stats_.memory_hits.fetch_add(1, std::memory_order_relaxed);
            return slot->second->second;
        }
        auto flight = inflight_.find(key);
        if (flight != inflight_.end()) {
            std::shared_future<ModelPtr> future = flight->second;
            stats_.coalesced.fetch_add(1, std::memory_order_relaxed);
            lock.unlock();
            return future.get();  // rethrows the leader's builder exception
        }
        inflight_.emplace(key, promise.get_future().share());
    }

    // This caller is the flight leader: disk probe then build, outside the
    // lock so other keys proceed concurrently. The counter bumps along the
    // way are relaxed atomics on purpose -- taking mutex_ from the middle of
    // a minutes-long build would stall every warm lookup behind it.
    ModelPtr model;
    try {
        const std::string path = artifact_path(key);
        if (!path.empty() && std::filesystem::exists(path)) {
            try {
                model = std::make_shared<const ReducedModel>(load_entry(key, path));
                stats_.disk_hits.fetch_add(1, std::memory_order_relaxed);
            } catch (const IoError&) {
                // Damaged or wrong-key artifact: rebuild and overwrite below.
                stats_.disk_errors.fetch_add(1, std::memory_order_relaxed);
            }
        }
        if (!model) {
            model = std::make_shared<const ReducedModel>(build());
            stats_.builds.fetch_add(1, std::memory_order_relaxed);
            if (!path.empty()) {
                try {
                    save_entry(key, *model, path);
                } catch (const IoError&) {
                    // Serving must not fail because the artifact tier is
                    // unwritable; the model is still returned and cached.
                    stats_.disk_errors.fetch_add(1, std::memory_order_relaxed);
                }
            }
        }
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            inflight_.erase(key);
        }
        promise.set_exception(std::current_exception());
        throw;
    }

    {
        std::lock_guard<std::mutex> lock(mutex_);
        insert_locked(key, model);
        inflight_.erase(key);
    }
    promise.set_value(model);
    return model;
}

RegistryStats Registry::stats() const {
    RegistryStats s;
    s.lookups = stats_.lookups.load(std::memory_order_relaxed);
    s.memory_hits = stats_.memory_hits.load(std::memory_order_relaxed);
    s.coalesced = stats_.coalesced.load(std::memory_order_relaxed);
    s.disk_hits = stats_.disk_hits.load(std::memory_order_relaxed);
    s.builds = stats_.builds.load(std::memory_order_relaxed);
    s.evictions = stats_.evictions.load(std::memory_order_relaxed);
    s.disk_errors = stats_.disk_errors.load(std::memory_order_relaxed);
    s.family_saves = stats_.family_saves.load(std::memory_order_relaxed);
    s.family_loads = stats_.family_loads.load(std::memory_order_relaxed);
    s.blocks_written = stats_.blocks_written.load(std::memory_order_relaxed);
    s.blocks_shared = stats_.blocks_shared.load(std::memory_order_relaxed);
    return s;
}

std::size_t Registry::memory_count() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return lru_.size();
}

}  // namespace atmor::rom
