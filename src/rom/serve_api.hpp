// The unified serving API: ONE typed request/response vocabulary shared by
// in-process callers (rom::ServeEngine::serve and its legacy wrappers) and
// the wire (net::Daemon / net::ServeClient). The redesign this file carries:
// ServeEngine's four ad-hoc entrypoints each re-threaded a
// (key, Registry::Builder) pair -- a shape that cannot cross a socket
// because a builder lambda does not serialize. Here model resolution is a
// ModelRef (registry key, artifact path, or inline build spec, all
// daemon-resolvable; the in-process builder survives as a non-wire field so
// the legacy wrappers stay bit-identical), waveforms are typed WaveformSpec
// parameter records instead of closures, and every answer is a
// ServeResponse carrying payload + ErrorCertificate + a typed error with a
// stable numeric code (util/error_codes.hpp).
//
// Wire encoding reuses the rom::io Writer/Reader primitives, so doubles are
// raw 8-byte and a round-trip is BIT-EXACT: a daemon answer is byte-for-byte
// the in-process answer (pinned by test_serve_protocol / test_serve_daemon).
// encode_response zeroes the serving-local timing fields (solve_seconds) so
// an encoded response is a pure function of the payload.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "la/matrix.hpp"
#include "ode/transient.hpp"
#include "pmor/param_space.hpp"
#include "rom/family.hpp"
#include "rom/family_artifact.hpp"
#include "rom/registry.hpp"
#include "util/error_codes.hpp"

namespace atmor::rom {

/// The accuracy contract a model was built under, surfaced per query: what
/// band the a-posteriori estimate covers, the tolerance targeted, and the
/// certified estimate itself (all from Provenance; zeros mean the model was
/// built by a fixed-order front-end and carries no certificate).
struct ErrorCertificate {
    std::string method;           ///< "adaptive" | "atmor" | "linear" | "norm"
    double tol = 0.0;             ///< build-time accuracy target (0 = none)
    double band_min = 0.0;        ///< certified band [rad/s]
    double band_max = 0.0;
    double estimated_error = 0.0; ///< a-posteriori max relative band error
    int expansion_points = 0;
    int order = 0;
    /// True when the model carries a build-time error estimate at all.
    [[nodiscard]] bool certified() const { return estimated_error > 0.0; }
};

/// How a parametric query should be answered and what the rejection path is.
struct ParametricOptions {
    /// Certification tolerance; 0 uses the family's own tol.
    double tol = 0.0;
    /// Blend the outputs of the cell's best AND runner-up member (inverse-
    /// distance weights) when both certify; the certificate is then the max
    /// of the two cross errors (a convex combination of two tol-accurate
    /// responses stays tol-accurate).
    bool blend = false;
    /// The rejection path: build a dedicated model for the query point when
    /// no member certifies it (resolved through the registry, so repeated
    /// uncovered queries at one point build once). Without it an uncovered
    /// query is a typed PreconditionError.
    std::function<ReducedModel(const pmor::Point&)> fallback_build;
    /// Registry key for the fallback model at a point. Defaults to a key
    /// composed from the family id, the point and the EFFECTIVE tolerance,
    /// so queries demanding different accuracies never share a cached
    /// fallback. Supply pmor::member_key(design, adaptive, p) here to make
    /// on-demand builds coalesce with family-member artifacts of the same
    /// accuracy.
    std::function<std::string(const pmor::Point&)> fallback_key;
};

struct ParametricAnswer {
    /// Output-mapped H1 over the query grid (blended when `blended_with`
    /// is set).
    std::vector<la::ZMatrix> response;
    /// The per-query accuracy contract: for member-served answers the
    /// estimated_error is the OFFLINE-CERTIFIED cross error of the covering
    /// training cell (>= the member's own build certificate); for fallback
    /// answers it is the freshly built model's provenance certificate.
    ErrorCertificate certificate;
    int member = -1;        ///< serving member index (-1 on fallback)
    int blended_with = -1;  ///< runner-up member blended in (-1: none)
    double blend_weight = 1.0;  ///< weight of `member` in the blend
    bool fallback = false;  ///< true when no member certified the query
};

/// Thrown (and reported as ErrorCode::serve_unresolved) when a ModelRef or
/// family reference names nothing the serving side can resolve -- distinct
/// from a generic precondition so a wire client can tell "bad key" from
/// "bad request shape".
class UnresolvedError : public util::PreconditionError {
public:
    using util::PreconditionError::PreconditionError;
};

/// A serializable build recipe, resolved daemon-side through the resolver
/// the host registered (ServeEngine::set_spec_resolver). `recipe` names a
/// catalog entry, `params` its numeric arguments -- the serving library
/// never interprets them, so hosts can expose exactly the builds they are
/// willing to run for remote callers.
struct BuildSpec {
    std::string recipe;
    std::vector<double> params;

    /// Stable registry key for the build ("spec:recipe(p1,p2,...)",
    /// shortest-round-trip doubles), so identical specs coalesce in the
    /// single-flight registry.
    [[nodiscard]] std::string key() const;
};

/// How a request names its model. Replaces the caller-supplied
/// Registry::Builder threading of the legacy entrypoints: the three tagged
/// alternatives all cross the wire; the optional in-process `builder` (set
/// by ModelRef::in_process, used by the legacy wrappers) never does.
struct ModelRef {
    enum class Kind : std::uint8_t {
        registry_key = 0,   ///< must already be resolvable by the registry
        artifact_path = 1,  ///< .atmor-rom file loaded (and cached) server-side
        build_spec = 2,     ///< built server-side through the spec resolver
    };

    Kind kind = Kind::registry_key;
    std::string key;   ///< registry key (registry_key kind)
    std::string path;  ///< artifact path (artifact_path kind)
    BuildSpec spec;    ///< build recipe (build_spec kind)
    /// In-process escape hatch carrying the legacy builder lambda. NEVER
    /// serialized: encode_request rejects a ref that has one (a wire request
    /// cannot ship code).
    Registry::Builder builder;

    [[nodiscard]] static ModelRef by_key(std::string key);
    [[nodiscard]] static ModelRef from_artifact(std::string path);
    [[nodiscard]] static ModelRef from_spec(BuildSpec spec);
    /// The legacy (key, Builder) pair as a ModelRef (in-process only).
    [[nodiscard]] static ModelRef in_process(std::string key, Registry::Builder build);

    /// The registry/cache key this ref resolves under (kind-prefixed for the
    /// non-key kinds so distinct reference styles never alias).
    [[nodiscard]] std::string cache_key() const;
};

/// A typed, serializable input waveform: the parameter records behind the
/// circuits::*_input factories, instantiable on either side of the wire.
struct WaveformSpec {
    enum class Kind : std::uint8_t {
        zero = 0,
        step = 1,
        pulse = 2,
        sine = 3,
        surge = 4,
        multi_tone = 5,  ///< sum of sin tones (intermodulation drives)
        am = 6,          ///< amplitude-modulated carrier (envelope drives)
    };

    Kind kind = Kind::zero;
    int arity = 1;             ///< output vector length (zero kind); 1 otherwise
    double amplitude = 0.0;    ///< also the am carrier amplitude
    double t_on = 0.0;         ///< step/pulse switch-on time
    double rise = 0.0;         ///< pulse rise span
    double t_off = 0.0;        ///< pulse fall start
    double fall = 0.0;         ///< pulse fall span
    double frequency_hz = 0.0; ///< sine frequency; am carrier frequency
    double tau_rise = 0.0;     ///< surge time constants
    double tau_decay = 0.0;
    double mod_hz = 0.0;       ///< am modulation frequency
    double mod_depth = 0.0;    ///< am modulation depth in [0, 1]
    /// multi_tone: per-tone amplitude / frequency / phase, shared length.
    /// tone_phases may stay empty (all zero).
    std::vector<double> tone_amplitudes;
    std::vector<double> tones_hz;
    std::vector<double> tone_phases;

    [[nodiscard]] static WaveformSpec zero(int arity = 1);
    [[nodiscard]] static WaveformSpec step(double amplitude, double t_on = 0.0);
    [[nodiscard]] static WaveformSpec pulse(double amplitude, double t_on, double rise,
                                            double t_off, double fall);
    [[nodiscard]] static WaveformSpec sine(double amplitude, double frequency_hz);
    [[nodiscard]] static WaveformSpec surge(double amplitude, double tau_rise,
                                            double tau_decay);
    [[nodiscard]] static WaveformSpec multi_tone(std::vector<double> amplitudes,
                                                 std::vector<double> freqs_hz,
                                                 std::vector<double> phases = {});
    [[nodiscard]] static WaveformSpec am(double amplitude, double carrier_hz, double mod_hz,
                                         double depth);

    /// The waveform as an ode::InputFn (same closed forms as the
    /// circuits::*_input factories). Typed PreconditionError on inconsistent
    /// parameters (e.g. a pulse whose hold ends before its rise).
    [[nodiscard]] ode::InputFn instantiate() const;
};

/// The serializable subset of ode::TransientOptions (everything but the
/// caller-supplied backend, which the engine overrides with its own warm
/// backend anyway -- exactly what the legacy entrypoint always did).
struct TransientSpec {
    double t_end = 1.0;
    double dt = 1e-3;
    ode::Method method = ode::Method::trapezoidal;
    int record_stride = 1;
    double newton_tol = 1e-10;
    int newton_max_iter = 25;
    double rkf_tol = 1e-8;
    double dt_min = 1e-12;
    double dt_max = 0.0;
    bool refactor_every_step = false;

    [[nodiscard]] static TransientSpec from_options(const ode::TransientOptions& opt);
    [[nodiscard]] ode::TransientOptions to_options() const;
};

enum class RequestKind : std::uint8_t {
    frequency_sweep = 0,
    transient_batch = 1,
    parametric_query = 2,
    certificate = 3,
    parametric_batch = 4,
};

const char* to_string(RequestKind kind);

/// Batched frequency response of the referenced model over `grid`.
struct FrequencySweepRequest {
    ModelRef model;
    std::vector<la::Complex> grid;
};

/// Batched transient scenarios against the referenced model. `inputs` is the
/// wire form; the non-serialized `raw_inputs` (legacy wrapper path) wins
/// when non-empty, so arbitrary in-process closures keep working.
struct TransientBatchRequest {
    ModelRef model;
    std::vector<WaveformSpec> inputs;
    TransientSpec options;
    std::vector<ode::InputFn> raw_inputs;  ///< in-process only, never serialized
};

/// Parametric query against a family. Over the wire the family is named by
/// `family_id` and resolved server-side (hosted catalog, then the registry's
/// mmap artifact tier); the non-serialized pointers are the legacy
/// in-process overloads, and `options` carries the in-process fallback
/// hooks. Wire requests use the HOST-registered fallback (host_family's
/// defaults), gated by `allow_fallback`.
struct ParametricQueryRequest {
    std::string family_id;
    pmor::Point coords;
    std::vector<la::Complex> grid;
    double tol = 0.0;            ///< 0 = family tolerance
    bool blend = false;
    bool allow_fallback = true;  ///< false strips the server-side fallback build
    // -- In-process only (never serialized). --------------------------------
    const Family* family = nullptr;
    const FamilyArtifact* artifact = nullptr;
    ParametricOptions options;
};

/// The certified error bound of the referenced model.
struct CertificateRequest {
    ModelRef model;
};

/// Many parameter points against ONE family in one round trip -- the
/// Monte-Carlo process-variation shape, where a yield sweep asks for
/// hundreds of perturbed instances of the same design. The family resolves
/// ONCE (hosted catalog / artifact mmap / in-process pointer) and every
/// point routes through the shared coverage table, so per-point cost is the
/// member sweep alone. The response concatenates per-point sweeps in
/// request order (point p's grid occupies response[p*grid.size() ..]) and
/// records per-point routing in the batch_* vectors; the top-level
/// certificate is the WORST point's.
struct ParametricBatchRequest {
    std::string family_id;
    std::vector<pmor::Point> coords;
    std::vector<la::Complex> grid;
    double tol = 0.0;            ///< 0 = family tolerance
    bool blend = false;
    bool allow_fallback = true;  ///< false strips the server-side fallback build
    // -- In-process only (never serialized). --------------------------------
    const Family* family = nullptr;
    const FamilyArtifact* artifact = nullptr;
    ParametricOptions options;
};

/// The tagged request variant: one vocabulary for every serving entrypoint,
/// in-process and on the wire.
struct ServeRequest {
    /// Admission-control identity (net::Daemon token buckets); empty is the
    /// anonymous tenant.
    std::string tenant;
    std::variant<FrequencySweepRequest, TransientBatchRequest, ParametricQueryRequest,
                 CertificateRequest, ParametricBatchRequest>
        body;

    [[nodiscard]] RequestKind kind() const {
        return static_cast<RequestKind>(body.index());
    }
};

/// Typed serving failure: a stable numeric code plus the exception text. A
/// wire response reports exactly what the in-process exception would.
struct ServeError {
    util::ErrorCode code = util::ErrorCode::ok;
    std::string message;

    [[nodiscard]] bool ok() const { return code == util::ErrorCode::ok; }
};

/// The uniform answer: payload fields for the request's kind, the model's
/// ErrorCertificate, and a typed error (code != ok means the payload fields
/// are empty/default). Transients keep the rich ode::TransientResult so the
/// legacy wrapper returns it unchanged; encode_response serializes the
/// deterministic fields and zeroes the wall-time ones.
struct ServeResponse {
    RequestKind kind = RequestKind::frequency_sweep;
    ServeError error;
    ErrorCertificate certificate;
    // -- frequency_sweep / parametric_query payload. -------------------------
    std::vector<la::ZMatrix> response;
    // -- transient_batch payload. --------------------------------------------
    std::vector<ode::TransientResult> transients;
    // -- parametric_query routing record. ------------------------------------
    int member = -1;
    int blended_with = -1;
    double blend_weight = 1.0;
    bool fallback = false;
    // -- parametric_batch per-point routing record (parallel arrays, one
    //    entry per requested point; batch_error[p] is point p's certified
    //    estimated error). ----------------------------------------------------
    std::vector<int> batch_member;
    std::vector<double> batch_error;
    std::vector<std::uint8_t> batch_fallback;

    [[nodiscard]] bool ok() const { return error.ok(); }
};

// ---------------------------------------------------------------------------
// Wire codec: payload bytes only (no framing -- net/protocol.hpp wraps them
// in the checksummed length-prefixed envelope). Decoders throw typed
// IoError{truncated|corrupt} on damaged payloads, mirroring rom::io.
// ---------------------------------------------------------------------------

/// Serialize a request. The tenant is encoded FIRST so peek_tenant can read
/// it without decoding the body (admission control runs before any payload
/// work). Throws PreconditionError when the request carries in-process-only
/// state (a builder lambda, raw input closures, family pointers).
std::string encode_request(const ServeRequest& req);
ServeRequest decode_request(const std::string& payload);

/// The tenant of an encoded request without decoding the body.
std::string peek_tenant(const std::string& payload);

/// Serialize a response. Wall-time fields (TransientResult::solve_seconds)
/// encode as zero so the bytes are a deterministic function of the payload.
std::string encode_response(const ServeResponse& resp);
ServeResponse decode_response(const std::string& payload);

}  // namespace atmor::rom
