// The v4 SECTIONED family artifact: compressed union-basis storage with
// per-member section offsets, a content-addressed block table, and an
// mmap-backed reader that materializes members lazily.
//
// Layout of a sectioned family payload (inside the usual io envelope):
//
//   u8  PayloadKind::family | u8 FamilyLayout::sectioned | u8 EncodingTier
//   u64 header_bytes              -- at fixed payload offset 3; where the
//                                    block region begins (patched last)
//   str family_id | param_space | f64 tol | i32 grid | f64 max_err | u8 conv
//   block table: u32 count x { u8 storage (0 inline / 1 external),
//                              u64 offset (inline: relative to the block
//                              region), u64 bytes, u64 fnv1a hash }
//   basis groups: u32 count x { u32 block, i32 rows, i32 cols }
//   member directory: u32 count x { coords, f64 certified/coverage/encoding/
//                              basis error, u32 basis_group, u32 coeff_block,
//                              i32 coeff_rows, i32 coeff_cols, u32 meta_block }
//   coverage cells (validated against the member count)
//   u64 directory checksum        -- fnv1a over payload[0, here)
//   inline block payloads         -- the block region, hash-addressed
//
// Integrity is LAYERED so the lazy reader never has to touch bytes it does
// not serve: the directory carries its own checksum (verified at open), and
// every block carries a content hash (verified when the block is first
// materialized). The eager load path (rom::load_family on a sectioned file)
// additionally enjoys the envelope's whole-payload checksum. Net effect: a
// flipped bit anywhere in the file surfaces as a typed IoError on whichever
// path observes it -- never a garbage member.
//
// Blocks are deduplicated by content hash within an artifact, and an
// externalizer hook lets rom::Registry share identical blocks ACROSS
// artifacts (stored once under <artifact_dir>/blocks/<hex16(hash)>.blk).
//
// FamilyArtifact::open maps the file read-only (POSIX mmap), parses and
// verifies only the directory, and decodes basis groups / members on first
// touch -- cold-start cost is O(touched members), the working set is page
// cache, and repeated member(i) calls share one immutable materialization.
// `ATMOR_EAGER_LOAD=1` (or a non-sectioned artifact) falls back to the
// classic eager whole-file load behind the same interface.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "rom/family.hpp"
#include "rom/family_codec.hpp"

namespace atmor::rom {

/// Decides where a unique content block lives: return true to store the
/// block externally (the callee must persist it so that the loader finds
/// <block_dir>/<hex16(hash)>.blk next to the artifact), false to embed it
/// inline. Called once per unique hash, in deterministic payload order.
using BlockExternalizer = std::function<bool(std::uint64_t hash, const std::string& bytes)>;

/// Frame a CompressedFamily as a sectioned v4 artifact. Without an
/// externalizer every block is embedded inline (self-contained file).
std::string serialize_family_artifact(const CompressedFamily& cf,
                                      const BlockExternalizer& externalize = nullptr);

/// Compress-and-save convenience: atomic publication, all blocks inline.
void save_family_artifact(const CompressedFamily& cf, const std::string& path);

namespace detail {
/// Materialize a full Family from an unframed sectioned payload (the eager
/// path rom::deserialize_family dispatches to). External block references
/// resolve against `block_dir`; "" means inline-only (any external reference
/// then throws IoError{corrupt}). Verifies the directory checksum and every
/// block hash.
Family family_from_sectioned_payload(const std::string& payload, const std::string& block_dir);
}  // namespace detail

/// Read-only view of a family artifact with lazy member materialization.
/// Copyable (shared immutable state); thread-safe: concurrent member(i)
/// calls race only on an internal mutex and at most one thread decodes a
/// given section.
class FamilyArtifact {
public:
    /// Map `path` and verify its directory. Falls back to an eager whole-
    /// file load (same interface, lazy() == false) when the artifact is not
    /// sectioned or ATMOR_EAGER_LOAD=1 is set. External blocks resolve
    /// against <dirname(path)>/blocks.
    static FamilyArtifact open(const std::string& path);

    /// Wrap an already-materialized family (eager mode; used by the fallback
    /// and by tests).
    static FamilyArtifact from_family(Family f);

    [[nodiscard]] const std::string& family_id() const;
    [[nodiscard]] const pmor::ParamSpace& space() const;
    [[nodiscard]] double tol() const;
    [[nodiscard]] int training_grid_per_dim() const;
    [[nodiscard]] double max_training_error() const;
    [[nodiscard]] bool converged() const;
    [[nodiscard]] const std::vector<CoverageCell>& cells() const;
    [[nodiscard]] int member_count() const;
    /// Parameter coordinates of member `i` (directory data; never triggers
    /// materialization).
    [[nodiscard]] const pmor::Point& member_coords(int i) const;

    /// Materialize (or fetch the cached) member `i`. Throws a typed IoError
    /// if the backing section fails its hash check.
    [[nodiscard]] std::shared_ptr<const FamilyMember> member(int i) const;

    /// Nearest training cell / member, same metric as rom::Family.
    [[nodiscard]] int locate(const pmor::Point& coords) const;
    [[nodiscard]] int nearest_member(const pmor::Point& coords) const;

    /// True when backed by a live mapping (members decode on demand).
    [[nodiscard]] bool lazy() const;
    /// Size of the artifact file (eager mode: serialized size estimate 0).
    [[nodiscard]] std::size_t file_bytes() const;
    /// Heap bytes currently materialized (directory + decoded sections).
    [[nodiscard]] std::size_t resident_bytes() const;
    [[nodiscard]] int materialized_members() const;
    [[nodiscard]] EncodingTier tier() const;

    /// Materialize everything into a standalone Family (eager snapshot).
    [[nodiscard]] Family to_family() const;

private:
    struct Impl;
    FamilyArtifact() = default;
    std::shared_ptr<Impl> impl_;
};

}  // namespace atmor::rom
