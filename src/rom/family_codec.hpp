// Union-basis compression of rom::Family artifacts with certified lossy
// encoding tiers.
//
// Members of one family overlap heavily by construction (the greedy builder
// inserts them into ONE parameter box over one frequency band), so their
// projection bases share most directions. compress_family exploits that:
// per full-order size group it builds a shared union basis U (staged through
// la::BasisBuilder, i.e. the blocked Householder QR panel path, with
// deflation), re-expresses every member basis as a small coefficient block
// C_i = U^T v_i, and encodes every numeric payload at an EncodingTier
// (raw f64, f32, or 16-bit per-column quantization). Reduced tensors are
// stored densely when that is smaller than the sparse triplet form -- for a
// Galerkin ROM the reduced G2 is dense and dominates the artifact, so this
// is where most of the size win comes from.
//
// Lossy tiers stay CERTIFIED: the decoded member is reconstructed during
// compression and its response deviation from the original (max relative
// output-H1 difference over a probe grid of the member's certified band) is
// MEASURED, recorded as encoding_error, and folded into every stored
// certificate -- member certified_error, coverage-cell best/second errors,
// and the family's max_training_error / converged flag. A served query's
// certificate therefore bounds the error of the model actually served, not
// of the model that was discarded at compression time. The f64 tier measures
// an exactly-zero encoding error (the reduced system round-trips bit-exact).
//
// decode_family is deterministic: the same CompressedFamily always
// materializes bit-identical members, which is what lets the mmap serving
// path (rom/family_artifact.hpp) and the eager path answer identically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rom/family.hpp"

namespace atmor::rom {

/// How numeric payload blocks are stored. Lossy tiers trade precision for
/// size; the precision actually lost is measured and certified per member.
enum class EncodingTier : std::uint8_t {
    f64 = 0,  ///< raw doubles (lossless, still wins via union basis + dense tensors)
    f32 = 1,  ///< float32 values (~2x on payload blocks)
    q16 = 2,  ///< 16-bit codes with per-column [lo, hi] ranges (~4x)
    q8 = 3,   ///< 8-bit codes, same per-column ranges (~8x; the measured
              ///< encoding error is correspondingly larger -- serve only
              ///< when the inflated certificates still clear the tol)
};

const char* to_string(EncodingTier tier);

struct CompressOptions {
    EncodingTier tier = EncodingTier::q16;
    /// Union-basis deflation threshold (la::BasisBuilder): a member basis
    /// column is dropped when its residual against the union falls below
    /// this times its norm. Tight by default so U spans every member.
    double basis_deflation_tol = 1e-10;
    /// Probe points across the member's certified band for the measured
    /// encoding error (>= 2).
    int probe_grid = 9;
};

/// One shared orthonormal basis per full-order size group (families with a
/// structural axis hold members of different full order n; a union basis
/// only makes sense within one n).
struct BasisGroup {
    int rows = 0;  ///< full order n of the group
    int cols = 0;  ///< union rank r (<= n)
    std::string bytes;  ///< encode_matrix_block(U, tier)
};

struct CompressedMember {
    pmor::Point coords;
    /// Inflated certificate: original certified error + encoding_error.
    double certified_error = 0.0;
    double coverage_radius = 0.0;
    /// Measured response deviation of the decoded member vs the original
    /// (max relative output-H1 difference over the probe grid); the amount
    /// folded into every stored certificate. Exactly 0 for the f64 tier.
    double encoding_error = 0.0;
    /// Max abs entry deviation of the reconstructed basis U C vs the
    /// original v (informational; the basis is not used in served
    /// responses, only for lifting).
    double basis_error = 0.0;
    std::uint32_t basis_group = 0;
    int coeff_rows = 0;  ///< r of the group
    int coeff_cols = 0;  ///< member order q
    std::string coeff_bytes;  ///< encode_matrix_block(U^T v, tier)
    /// Provenance + tier-encoded reduced system (encode_member_meta).
    std::string meta_bytes;
};

/// The compressed form of a Family: same header/coverage data (certificates
/// inflated by the measured encoding errors), members as coefficient +
/// meta blocks against shared basis groups.
struct CompressedFamily {
    std::string family_id;
    pmor::ParamSpace space;
    double tol = 0.0;
    int training_grid_per_dim = 0;
    double max_training_error = 0.0;  ///< recomputed from inflated cells
    bool converged = false;
    EncodingTier tier = EncodingTier::f64;
    std::vector<BasisGroup> basis_groups;
    std::vector<CompressedMember> members;
    std::vector<CoverageCell> cells;  ///< certificate-inflated
};

struct CompressStats {
    std::size_t basis_columns_in = 0;     ///< sum of member orders q
    std::size_t basis_columns_union = 0;  ///< sum of group ranks r
    double max_encoding_error = 0.0;
    double max_basis_error = 0.0;
};

/// Compress a family (see file comment). Throws util::PreconditionError on
/// an empty family or invalid options.
CompressedFamily compress_family(const Family& f, const CompressOptions& opt = {},
                                 CompressStats* stats = nullptr);

/// Materialize every member (deterministic; see file comment). Throws a
/// typed IoError{corrupt} on inconsistent blocks.
Family decode_family(const CompressedFamily& cf);

// -- Block codec (used by the artifact layer and pinned by tests). ----------

/// Exact byte size of an encoded rows x cols matrix block at `tier`.
std::size_t encoded_matrix_bytes(int rows, int cols, EncodingTier tier);

/// Encode a matrix block: f64/f32 store values row-major; q16 stores
/// per-column [lo, hi] ranges then row-major 16-bit codes.
std::string encode_matrix_block(const la::Matrix& m, EncodingTier tier);

/// Decode a matrix block; `len` must equal encoded_matrix_bytes (typed
/// IoError{corrupt} otherwise -- never reads past `data + len`).
la::Matrix decode_matrix_block(const char* data, std::size_t len, int rows, int cols,
                               EncodingTier tier);

/// Serialize provenance + build record + the tier-encoded reduced system of
/// a member (everything except the basis v, which lives in the shared
/// union-basis blocks).
std::string encode_member_meta(const ReducedModel& m, EncodingTier tier);

/// Decode a member meta block and attach the reconstructed basis `v`.
/// Validates order == v.cols() == rom.order() (typed IoError{corrupt}).
ReducedModel decode_member_meta(const char* data, std::size_t len, EncodingTier tier,
                                la::Matrix v);

}  // namespace atmor::rom
