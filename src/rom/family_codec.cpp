#include "rom/family_codec.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <utility>

#include "la/orth.hpp"
#include "rom/io.hpp"
#include "util/check.hpp"
#include "volterra/transfer.hpp"

namespace atmor::rom {

namespace {

[[noreturn]] void fail(IoErrorKind kind, const std::string& what) {
    throw IoError(kind, std::string("rom::family_codec: ") + what);
}

/// Structural precondition failures (tensor add, Qldae validation) become
/// the typed corrupt error the decode paths promise, same contract as io.
template <class Fn>
auto structurally(Fn&& fn) -> decltype(fn()) {
    try {
        return fn();
    } catch (const util::PreconditionError& e) {
        fail(IoErrorKind::corrupt, std::string("invalid structure: ") + e.what());
    }
}

/// Scalar tier rounding for sparse tensor entries (no block range to
/// quantize against, so the lossy tiers both round through float).
double round_scalar(double v, EncodingTier tier) {
    if (tier == EncodingTier::f64) return v;
    return static_cast<double>(static_cast<float>(v));
}

// -- Tier-encoded sub-records inside a member meta block. -------------------

void write_tmatrix(Writer& w, const la::Matrix& m, EncodingTier tier) {
    w.i32(m.rows());
    w.i32(m.cols());
    w.str(encode_matrix_block(m, tier));
}

la::Matrix read_tmatrix(Reader& r, EncodingTier tier) {
    const std::int32_t rows = r.i32();
    const std::int32_t cols = r.i32();
    if (rows < 0 || cols < 0) fail(IoErrorKind::corrupt, "negative tier-matrix dimension");
    const std::string bytes = r.str();
    return decode_matrix_block(bytes.data(), bytes.size(), rows, cols, tier);
}

void write_tcsr(Writer& w, const sparse::CsrMatrix& m, EncodingTier tier) {
    w.i32(m.rows());
    w.i32(m.cols());
    w.u64(m.values().size());
    w.str(std::string(reinterpret_cast<const char*>(m.row_ptr().data()),
                      m.row_ptr().size() * sizeof(int)));
    w.str(std::string(reinterpret_cast<const char*>(m.col_idx().data()),
                      m.col_idx().size() * sizeof(int)));
    la::Matrix values(static_cast<int>(m.values().size()), 1);
    std::copy(m.values().begin(), m.values().end(), values.data());
    write_tmatrix(w, values, tier);
}

sparse::CsrMatrix read_tcsr(Reader& r, EncodingTier tier) {
    const std::int32_t rows = r.i32();
    const std::int32_t cols = r.i32();
    if (rows < 0 || cols < 0) fail(IoErrorKind::corrupt, "negative tier-CSR dimension");
    const std::uint64_t nnz = r.u64();
    const std::string row_ptr_bytes = r.str();
    const std::string col_idx_bytes = r.str();
    if (row_ptr_bytes.size() != (static_cast<std::size_t>(rows) + 1) * sizeof(int) ||
        col_idx_bytes.size() != nnz * sizeof(int))
        fail(IoErrorKind::corrupt, "tier-CSR index arrays disagree with the dimensions");
    std::vector<int> row_ptr(static_cast<std::size_t>(rows) + 1);
    std::memcpy(row_ptr.data(), row_ptr_bytes.data(), row_ptr_bytes.size());
    std::vector<int> col_idx(static_cast<std::size_t>(nnz));
    std::memcpy(col_idx.data(), col_idx_bytes.data(), col_idx_bytes.size());
    la::Matrix values_m = read_tmatrix(r, tier);
    if (values_m.cols() != 1 || values_m.rows() != static_cast<std::int32_t>(nnz))
        fail(IoErrorKind::corrupt, "tier-CSR value block disagrees with nnz");
    std::vector<double> values(values_m.data(), values_m.data() + nnz);
    return structurally([&] {
        return sparse::CsrMatrix::from_parts(rows, cols, std::move(row_ptr),
                                             std::move(col_idx), std::move(values));
    });
}

/// Sparse triplet byte cost of `count` tensor3/tensor4 entries.
std::size_t triplet_bytes(std::size_t count, std::size_t index_ints) {
    return sizeof(std::uint64_t) + count * (index_ints * sizeof(std::int32_t) + sizeof(double));
}

/// Reduced tensors are DENSE (a Galerkin projection fills them), so a dense
/// lifted-index matrix beats the 20-byte triplets; full-order tensors stay
/// sparse because the dense form would be n^3 doubles. The rule is purely
/// by encoded size, decided per tensor. The dense matrix is shaped
/// (lifted x rows) -- long dimension on the rows -- so the q16 tier pays its
/// per-COLUMN range overhead only `rows` times.
void write_ttensor3(Writer& w, const sparse::SparseTensor3& t, EncodingTier tier) {
    w.i32(t.rows());
    w.i32(t.n1());
    w.i32(t.n2());
    const std::size_t lifted = static_cast<std::size_t>(t.n1()) * static_cast<std::size_t>(t.n2());
    const std::size_t sparse_bytes = triplet_bytes(t.entry_count(), 3);
    const bool dense_feasible = t.rows() > 0 && lifted > 0 && lifted <= (1u << 20);
    if (dense_feasible &&
        encoded_matrix_bytes(static_cast<int>(lifted), t.rows(), tier) < sparse_bytes) {
        w.u8(1);
        la::Matrix d(static_cast<int>(lifted), t.rows());
        for (const auto& e : t.entries())
            d(e.i * t.n2() + e.j, e.row) += e.value;
        write_tmatrix(w, d, tier);
        return;
    }
    w.u8(0);
    w.u64(t.entry_count());
    for (const auto& e : t.entries()) {
        w.i32(e.row);
        w.i32(e.i);
        w.i32(e.j);
        w.f64(round_scalar(e.value, tier));
    }
}

sparse::SparseTensor3 read_ttensor3(Reader& r, EncodingTier tier) {
    const std::int32_t rows = r.i32();
    const std::int32_t n1 = r.i32();
    const std::int32_t n2 = r.i32();
    if (rows < 0 || n1 < 0 || n2 < 0) fail(IoErrorKind::corrupt, "negative tensor3 dimension");
    const std::uint8_t rep = r.u8();
    if (rep > 1) fail(IoErrorKind::corrupt, "unknown tensor3 representation tag");
    return structurally([&] {
        sparse::SparseTensor3 t(rows, n1, n2);
        if (rep == 1) {
            la::Matrix d = read_tmatrix(r, tier);
            if (d.rows() != n1 * n2 || d.cols() != rows)
                fail(IoErrorKind::corrupt, "dense tensor3 block disagrees with the dimensions");
            for (int idx = 0; idx < d.rows(); ++idx)
                for (int row = 0; row < rows; ++row)
                    if (d(idx, row) != 0.0) t.add(row, idx / n2, idx % n2, d(idx, row));
        } else {
            const std::uint64_t count = r.u64();
            for (std::uint64_t e = 0; e < count; ++e) {
                const std::int32_t row = r.i32();
                const std::int32_t i = r.i32();
                const std::int32_t j = r.i32();
                t.add(row, i, j, r.f64());
            }
        }
        return t;
    });
}

void write_ttensor4(Writer& w, const sparse::SparseTensor4& t, EncodingTier tier) {
    w.i32(t.n());
    const std::size_t n = static_cast<std::size_t>(t.n());
    const std::size_t lifted = n * n * n;
    const std::size_t sparse_bytes = triplet_bytes(t.entry_count(), 4);
    const bool dense_feasible = t.n() > 0 && lifted <= (1u << 20);
    if (dense_feasible &&
        encoded_matrix_bytes(static_cast<int>(lifted), t.n(), tier) < sparse_bytes) {
        w.u8(1);
        la::Matrix d(static_cast<int>(lifted), t.n());
        for (const auto& e : t.entries())
            d((e.i * t.n() + e.j) * t.n() + e.k, e.row) += e.value;
        write_tmatrix(w, d, tier);
        return;
    }
    w.u8(0);
    w.u64(t.entry_count());
    for (const auto& e : t.entries()) {
        w.i32(e.row);
        w.i32(e.i);
        w.i32(e.j);
        w.i32(e.k);
        w.f64(round_scalar(e.value, tier));
    }
}

sparse::SparseTensor4 read_ttensor4(Reader& r, EncodingTier tier) {
    const std::int32_t n = r.i32();
    if (n < 0) fail(IoErrorKind::corrupt, "negative tensor4 dimension");
    const std::uint8_t rep = r.u8();
    if (rep > 1) fail(IoErrorKind::corrupt, "unknown tensor4 representation tag");
    return structurally([&] {
        sparse::SparseTensor4 t(n);
        if (rep == 1) {
            la::Matrix d = read_tmatrix(r, tier);
            if (static_cast<std::size_t>(d.rows()) !=
                    static_cast<std::size_t>(n) * static_cast<std::size_t>(n) *
                        static_cast<std::size_t>(n) ||
                d.cols() != n)
                fail(IoErrorKind::corrupt, "dense tensor4 block disagrees with the dimensions");
            for (int idx = 0; idx < d.rows(); ++idx)
                for (int row = 0; row < n; ++row)
                    if (d(idx, row) != 0.0)
                        t.add(row, idx / (n * n), (idx / n) % n, idx % n, d(idx, row));
        } else {
            const std::uint64_t count = r.u64();
            for (std::uint64_t e = 0; e < count; ++e) {
                const std::int32_t row = r.i32();
                const std::int32_t i = r.i32();
                const std::int32_t j = r.i32();
                const std::int32_t k = r.i32();
                t.add(row, i, j, k, r.f64());
            }
        }
        return t;
    });
}

void write_tqldae(Writer& w, const volterra::Qldae& sys, EncodingTier tier) {
    w.u8(sys.is_sparse() ? 1 : 0);
    const std::uint32_t nd1 =
        sys.has_bilinear() ? static_cast<std::uint32_t>(sys.inputs()) : 0;
    if (sys.is_sparse()) {
        write_tcsr(w, *sys.g1_csr(), tier);
        write_tcsr(w, *sys.b_csr(), tier);
        write_tcsr(w, *sys.c_csr(), tier);
        w.u32(nd1);
        for (std::uint32_t i = 0; i < nd1; ++i)
            write_tcsr(w, sys.d1_csr_blocks()[static_cast<std::size_t>(i)], tier);
    } else {
        write_tmatrix(w, sys.g1(), tier);
        write_tmatrix(w, sys.b(), tier);
        write_tmatrix(w, sys.c(), tier);
        w.u32(nd1);
        for (std::uint32_t i = 0; i < nd1; ++i)
            write_tmatrix(w, sys.d1(static_cast<int>(i)), tier);
    }
    write_ttensor3(w, sys.g2(), tier);
    write_ttensor4(w, sys.g3(), tier);
}

volterra::Qldae read_tqldae(Reader& r, EncodingTier tier) {
    const std::uint8_t tag = r.u8();
    if (tag > 1) fail(IoErrorKind::corrupt, "unknown Qldae storage tag");
    if (tag == 1) {
        sparse::CsrMatrix g1 = read_tcsr(r, tier);
        sparse::CsrMatrix b = read_tcsr(r, tier);
        sparse::CsrMatrix c = read_tcsr(r, tier);
        const std::uint32_t nd1 = r.u32();
        std::vector<sparse::CsrMatrix> d1;
        d1.reserve(nd1);
        for (std::uint32_t i = 0; i < nd1; ++i) d1.push_back(read_tcsr(r, tier));
        sparse::SparseTensor3 g2 = read_ttensor3(r, tier);
        sparse::SparseTensor4 g3 = read_ttensor4(r, tier);
        return structurally([&] {
            return volterra::Qldae(std::move(g1), std::move(g2), std::move(g3), std::move(d1),
                                   std::move(b), std::move(c));
        });
    }
    la::Matrix g1 = read_tmatrix(r, tier);
    la::Matrix b = read_tmatrix(r, tier);
    la::Matrix c = read_tmatrix(r, tier);
    const std::uint32_t nd1 = r.u32();
    std::vector<la::Matrix> d1;
    d1.reserve(nd1);
    for (std::uint32_t i = 0; i < nd1; ++i) d1.push_back(read_tmatrix(r, tier));
    sparse::SparseTensor3 g2 = read_ttensor3(r, tier);
    sparse::SparseTensor4 g3 = read_ttensor4(r, tier);
    return structurally([&] {
        return volterra::Qldae(std::move(g1), std::move(g2), std::move(g3), std::move(d1),
                               std::move(b), std::move(c));
    });
}

/// Max relative output-H1 deviation of the decoded member vs the original
/// over a probe grid of the member's certified band -- the measured rounding
/// error folded into every stored certificate. Bit-identical systems (the
/// f64 tier) measure exactly zero: both sweeps run the same arithmetic on
/// the same bytes.
double measured_encoding_error(const ReducedModel& original, const ReducedModel& decoded,
                               int probe_grid) {
    double lo = original.provenance.band_min;
    double hi = original.provenance.band_max;
    if (!(hi > 0.0)) {
        lo = 1e-1;
        hi = 1e1;
    } else if (!(lo > 0.0) || lo > hi) {
        lo = hi / 100.0;
    }
    std::vector<la::Complex> grid;
    grid.reserve(static_cast<std::size_t>(probe_grid));
    for (int k = 0; k < probe_grid; ++k)
        grid.emplace_back(0.0, lo + (hi - lo) * k / (probe_grid - 1));
    const volterra::TransferEvaluator ev_orig(original.rom);
    const volterra::TransferEvaluator ev_dec(decoded.rom);
    const std::vector<la::ZMatrix> resp_orig = ev_orig.output_h1_sweep(grid);
    const std::vector<la::ZMatrix> resp_dec = ev_dec.output_h1_sweep(grid);
    double denom = 0.0;
    double num = 0.0;
    for (std::size_t k = 0; k < grid.size(); ++k) {
        denom = std::max(denom, la::max_abs(resp_orig[k]));
        num = std::max(num, la::max_abs(resp_dec[k] - resp_orig[k]));
    }
    return denom > 0.0 ? num / denom : num;
}

}  // namespace

const char* to_string(EncodingTier tier) {
    switch (tier) {
        case EncodingTier::f64:
            return "f64";
        case EncodingTier::f32:
            return "f32";
        case EncodingTier::q16:
            return "q16";
        case EncodingTier::q8:
            return "q8";
    }
    return "unknown";
}

std::size_t encoded_matrix_bytes(int rows, int cols, EncodingTier tier) {
    const std::size_t n = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    switch (tier) {
        case EncodingTier::f64:
            return n * sizeof(double);
        case EncodingTier::f32:
            return n * sizeof(float);
        case EncodingTier::q16:
            return static_cast<std::size_t>(cols) * 2 * sizeof(double) +
                   n * sizeof(std::uint16_t);
        case EncodingTier::q8:
            return static_cast<std::size_t>(cols) * 2 * sizeof(double) +
                   n * sizeof(std::uint8_t);
    }
    return 0;
}

namespace {

/// Shared quantized-block writer: per-column [lo, hi] f64 ranges, then
/// row-major CodeT codes mapping the column range onto [0, max_code].
template <class CodeT>
void append_quantized(std::string& out, const la::Matrix& m) {
    constexpr double kMaxCode = static_cast<double>(std::numeric_limits<CodeT>::max());
    std::vector<double> lo(static_cast<std::size_t>(m.cols()), 0.0);
    std::vector<double> hi(static_cast<std::size_t>(m.cols()), 0.0);
    for (int j = 0; j < m.cols(); ++j) {
        double cl = std::numeric_limits<double>::infinity();
        double ch = -std::numeric_limits<double>::infinity();
        for (int i = 0; i < m.rows(); ++i) {
            const double v = m(i, j);
            ATMOR_REQUIRE(std::isfinite(v),
                          "encode_matrix_block: non-finite value at (" << i << "," << j << ")");
            cl = std::min(cl, v);
            ch = std::max(ch, v);
        }
        if (m.rows() == 0) cl = ch = 0.0;
        lo[static_cast<std::size_t>(j)] = cl;
        hi[static_cast<std::size_t>(j)] = ch;
        out.append(reinterpret_cast<const char*>(&cl), sizeof(cl));
        out.append(reinterpret_cast<const char*>(&ch), sizeof(ch));
    }
    for (int i = 0; i < m.rows(); ++i)
        for (int j = 0; j < m.cols(); ++j) {
            const double cl = lo[static_cast<std::size_t>(j)];
            const double ch = hi[static_cast<std::size_t>(j)];
            CodeT code = 0;
            if (ch > cl)
                code = static_cast<CodeT>(std::lround((m(i, j) - cl) / (ch - cl) * kMaxCode));
            out.append(reinterpret_cast<const char*>(&code), sizeof(code));
        }
}

/// Shared quantized-block reader (inverse of append_quantized).
template <class CodeT>
void read_quantized(la::Matrix& m, const char* data, int rows, int cols) {
    constexpr double kMaxCode = static_cast<double>(std::numeric_limits<CodeT>::max());
    std::vector<double> lo(static_cast<std::size_t>(cols));
    std::vector<double> hi(static_cast<std::size_t>(cols));
    for (int j = 0; j < cols; ++j) {
        std::memcpy(&lo[static_cast<std::size_t>(j)],
                    data + static_cast<std::size_t>(j) * 2 * sizeof(double), sizeof(double));
        std::memcpy(&hi[static_cast<std::size_t>(j)],
                    data + (static_cast<std::size_t>(j) * 2 + 1) * sizeof(double),
                    sizeof(double));
    }
    const char* codes = data + static_cast<std::size_t>(cols) * 2 * sizeof(double);
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j) {
            CodeT code;
            std::memcpy(&code,
                        codes + (static_cast<std::size_t>(i) * static_cast<std::size_t>(cols) +
                                 static_cast<std::size_t>(j)) *
                                    sizeof(code),
                        sizeof(code));
            const double cl = lo[static_cast<std::size_t>(j)];
            const double ch = hi[static_cast<std::size_t>(j)];
            m(i, j) = ch > cl ? cl + code * (ch - cl) / kMaxCode : cl;
        }
}

}  // namespace

std::string encode_matrix_block(const la::Matrix& m, EncodingTier tier) {
    const std::size_t n = static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols());
    std::string out;
    out.reserve(encoded_matrix_bytes(m.rows(), m.cols(), tier));
    switch (tier) {
        case EncodingTier::f64:
            out.append(reinterpret_cast<const char*>(m.data()), n * sizeof(double));
            break;
        case EncodingTier::f32:
            for (std::size_t k = 0; k < n; ++k) {
                const float f = static_cast<float>(m.data()[k]);
                out.append(reinterpret_cast<const char*>(&f), sizeof(f));
            }
            break;
        case EncodingTier::q16:
            append_quantized<std::uint16_t>(out, m);
            break;
        case EncodingTier::q8:
            append_quantized<std::uint8_t>(out, m);
            break;
    }
    return out;
}

la::Matrix decode_matrix_block(const char* data, std::size_t len, int rows, int cols,
                               EncodingTier tier) {
    if (rows < 0 || cols < 0) fail(IoErrorKind::corrupt, "negative block dimension");
    if (len != encoded_matrix_bytes(rows, cols, tier))
        fail(IoErrorKind::corrupt,
             "block is " + std::to_string(len) + " bytes, tier " + to_string(tier) +
                 " expects " + std::to_string(encoded_matrix_bytes(rows, cols, tier)) + " for " +
                 std::to_string(rows) + "x" + std::to_string(cols));
    la::Matrix m(rows, cols);
    const std::size_t n = static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    switch (tier) {
        case EncodingTier::f64:
            std::memcpy(m.data(), data, n * sizeof(double));
            break;
        case EncodingTier::f32:
            for (std::size_t k = 0; k < n; ++k) {
                float f;
                std::memcpy(&f, data + k * sizeof(float), sizeof(f));
                m.data()[k] = static_cast<double>(f);
            }
            break;
        case EncodingTier::q16:
            read_quantized<std::uint16_t>(m, data, rows, cols);
            break;
        case EncodingTier::q8:
            read_quantized<std::uint8_t>(m, data, rows, cols);
            break;
    }
    return m;
}

std::string encode_member_meta(const ReducedModel& m, EncodingTier tier) {
    Writer w;
    w.provenance(m.provenance);
    w.f64(m.build_seconds);
    w.i32(m.raw_vectors);
    w.i32(m.order);
    write_tqldae(w, m.rom, tier);
    return w.bytes();
}

ReducedModel decode_member_meta(const char* data, std::size_t len, EncodingTier tier,
                                la::Matrix v) {
    const std::string buf(data, len);
    Reader r(buf, kFormatVersion);
    Provenance prov = r.provenance();
    const double build_seconds = r.f64();
    const std::int32_t raw_vectors = r.i32();
    const std::int32_t order = r.i32();
    volterra::Qldae rom = read_tqldae(r, tier);
    if (!r.at_end()) fail(IoErrorKind::corrupt, "trailing bytes after the member meta block");
    if (order != v.cols() || rom.order() != order)
        fail(IoErrorKind::corrupt, "order field disagrees with the stored ROM/basis");
    return ReducedModel{std::move(rom), std::move(v), build_seconds, raw_vectors, order,
                        std::move(prov)};
}

CompressedFamily compress_family(const Family& f, const CompressOptions& opt,
                                 CompressStats* stats) {
    ATMOR_REQUIRE(!f.members.empty(), "compress_family: family has no members");
    ATMOR_REQUIRE(opt.probe_grid >= 2, "compress_family: need probe_grid >= 2");
    ATMOR_REQUIRE(opt.basis_deflation_tol > 0.0,
                  "compress_family: need basis_deflation_tol > 0");

    CompressedFamily out;
    out.family_id = f.family_id;
    out.space = f.space;
    out.tol = f.tol;
    out.training_grid_per_dim = f.training_grid_per_dim;
    out.tier = opt.tier;
    out.members.resize(f.members.size());

    // Group members by full order n (a structural axis yields several
    // groups; a union basis only spans one n), deterministically by n.
    std::map<int, std::vector<std::size_t>> by_rows;
    for (std::size_t i = 0; i < f.members.size(); ++i)
        by_rows[f.members[i].model.v.rows()].push_back(i);

    std::vector<double> eta(f.members.size(), 0.0);
    for (const auto& [n, idxs] : by_rows) {
        la::BasisBuilder builder(n, opt.basis_deflation_tol);
        for (const std::size_t i : idxs) {
            const la::Matrix& v = f.members[i].model.v;
            for (int j = 0; j < v.cols(); ++j) builder.stage(v.col(j));
            builder.flush();  // one blocked-QR panel per member
            if (stats) stats->basis_columns_in += static_cast<std::size_t>(v.cols());
        }
        const la::Matrix u = builder.matrix();
        BasisGroup group;
        group.rows = n;
        group.cols = u.cols();
        group.bytes = encode_matrix_block(u, opt.tier);
        const la::Matrix u_dec =
            decode_matrix_block(group.bytes.data(), group.bytes.size(), n, u.cols(), opt.tier);
        const std::uint32_t gi = static_cast<std::uint32_t>(out.basis_groups.size());
        out.basis_groups.push_back(std::move(group));
        if (stats) stats->basis_columns_union += static_cast<std::size_t>(u.cols());

        const la::Matrix ut = la::transpose(u);
        for (const std::size_t i : idxs) {
            const FamilyMember& fm = f.members[i];
            const la::Matrix coeff = la::matmul_blocked(ut, fm.model.v);
            std::string coeff_bytes = encode_matrix_block(coeff, opt.tier);
            const la::Matrix coeff_dec = decode_matrix_block(
                coeff_bytes.data(), coeff_bytes.size(), coeff.rows(), coeff.cols(), opt.tier);
            la::Matrix v_dec = la::matmul_blocked(u_dec, coeff_dec);
            const double berr = la::max_abs(v_dec - fm.model.v);

            // The meta block stores the hash of the basis that will actually
            // be served, so serving-layer caches key on the decoded basis.
            ReducedModel tagged = fm.model;
            tagged.provenance.basis_hash = basis_hash(v_dec);
            std::string meta_bytes = encode_member_meta(tagged, opt.tier);
            const ReducedModel decoded = decode_member_meta(
                meta_bytes.data(), meta_bytes.size(), opt.tier, std::move(v_dec));
            const double err = measured_encoding_error(fm.model, decoded, opt.probe_grid);
            eta[i] = err;

            CompressedMember& cm = out.members[i];
            cm.coords = fm.coords;
            cm.certified_error = fm.certified_error + err;
            cm.coverage_radius = fm.coverage_radius;
            cm.encoding_error = err;
            cm.basis_error = berr;
            cm.basis_group = gi;
            cm.coeff_rows = coeff.rows();
            cm.coeff_cols = coeff.cols();
            cm.coeff_bytes = std::move(coeff_bytes);
            cm.meta_bytes = std::move(meta_bytes);
            if (stats) {
                stats->max_encoding_error = std::max(stats->max_encoding_error, err);
                stats->max_basis_error = std::max(stats->max_basis_error, berr);
            }
        }
    }

    // Fold the measured rounding errors into the coverage certificates and
    // recompute the family-level summary from the inflated table.
    out.cells = f.cells;
    double max_err = 0.0;
    for (CoverageCell& cell : out.cells) {
        if (cell.best >= 0) cell.best_error += eta[static_cast<std::size_t>(cell.best)];
        if (cell.second >= 0) cell.second_error += eta[static_cast<std::size_t>(cell.second)];
        max_err = std::max(max_err, cell.best_error);
    }
    if (out.cells.empty())
        max_err = f.max_training_error + *std::max_element(eta.begin(), eta.end());
    out.max_training_error = max_err;
    out.converged = max_err <= out.tol;
    return out;
}

Family decode_family(const CompressedFamily& cf) {
    Family f;
    f.family_id = cf.family_id;
    f.space = cf.space;
    f.tol = cf.tol;
    f.training_grid_per_dim = cf.training_grid_per_dim;
    f.max_training_error = cf.max_training_error;
    f.converged = cf.converged;

    std::vector<la::Matrix> bases;
    bases.reserve(cf.basis_groups.size());
    for (const BasisGroup& g : cf.basis_groups)
        bases.push_back(
            decode_matrix_block(g.bytes.data(), g.bytes.size(), g.rows, g.cols, cf.tier));

    f.members.reserve(cf.members.size());
    for (const CompressedMember& cm : cf.members) {
        if (cm.basis_group >= bases.size())
            fail(IoErrorKind::corrupt, "member references a missing basis group");
        const la::Matrix& u = bases[cm.basis_group];
        if (cm.coeff_rows != u.cols())
            fail(IoErrorKind::corrupt, "coefficient rows disagree with the union rank");
        const la::Matrix coeff = decode_matrix_block(cm.coeff_bytes.data(),
                                                     cm.coeff_bytes.size(), cm.coeff_rows,
                                                     cm.coeff_cols, cf.tier);
        la::Matrix v = la::matmul_blocked(u, coeff);
        ReducedModel model =
            decode_member_meta(cm.meta_bytes.data(), cm.meta_bytes.size(), cf.tier,
                               std::move(v));
        f.members.push_back(FamilyMember{cm.coords, cm.certified_error, cm.coverage_radius,
                                         std::move(model)});
    }

    const int member_count = static_cast<int>(f.members.size());
    for (const CoverageCell& cell : cf.cells)
        if (cell.best < -1 || cell.best >= member_count || cell.second < -1 ||
            cell.second >= member_count)
            fail(IoErrorKind::corrupt, "coverage cell references a missing member");
    f.cells = cf.cells;
    return f;
}

}  // namespace atmor::rom
