// Thread-safe reduced-model store: reduce once, serve everyone.
//
// Keys are stable strings composed from (circuit id, parameters, reduction
// options) -- circuits::*Options::key() provides the circuit part. Lookup
// tiers, cheapest first:
//   1. in-memory LRU of live ReducedModel handles (bounded; eviction only
//      drops the memory slot, outstanding shared_ptrs stay valid),
//   2. on-disk artifact directory (optional): rom::io-framed entries that
//      store the FULL key ahead of the model. Files are NAMED by the FNV-1a
//      hash of the key, but a load is only accepted when the stored key
//      matches -- hash collisions and foreign files rebuild instead of
//      serving the wrong model,
//   3. the caller-supplied builder (the expensive offline reduction).
// Concurrent get_or_build calls for the SAME key are single-flight: exactly
// one caller runs the builder, the rest block on its shared_future and
// receive the same handle (pinned by test_rom_registry). Distinct keys build
// concurrently.
#pragma once

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rom/reduced_model.hpp"

namespace atmor::rom {

struct RegistryOptions {
    /// Bound on live in-memory models (LRU eviction past it).
    std::size_t max_memory_models = 8;
    /// Artifact directory for the disk tier; empty disables it. Created on
    /// construction when missing.
    std::string artifact_dir;
};

struct RegistryStats {
    long lookups = 0;      ///< get_or_build calls
    long memory_hits = 0;  ///< served from the LRU tier
    long coalesced = 0;    ///< joined another caller's in-flight build
    long disk_hits = 0;    ///< loaded from the artifact tier
    long builds = 0;       ///< builder invocations (the expensive path)
    long evictions = 0;    ///< LRU slots reclaimed
    long disk_errors = 0;  ///< unreadable/corrupt artifacts (fell back to build)
};

class Registry {
public:
    using Builder = std::function<ReducedModel()>;

    explicit Registry(RegistryOptions opt = {});

    /// The model for `key`, from the cheapest tier that has it; on a full
    /// miss, runs `build` exactly once across all concurrent callers and
    /// (when the disk tier is enabled) persists the artifact. A builder
    /// exception propagates to every waiting caller and leaves no entry
    /// behind, so the next lookup retries.
    [[nodiscard]] std::shared_ptr<const ReducedModel> get_or_build(const std::string& key,
                                                                   const Builder& build);

    /// Memory-tier peek (no disk probe, no build, no LRU touch); nullptr
    /// when not resident.
    [[nodiscard]] std::shared_ptr<const ReducedModel> cached(const std::string& key) const;

    /// Artifact path for `key` (empty string when the disk tier is off).
    [[nodiscard]] std::string artifact_path(const std::string& key) const;

    [[nodiscard]] RegistryStats stats() const;
    [[nodiscard]] std::size_t memory_count() const;
    [[nodiscard]] const RegistryOptions& options() const { return opt_; }

private:
    using ModelPtr = std::shared_ptr<const ReducedModel>;

    /// Insert into the LRU front, evicting past capacity. Caller holds mutex_.
    void insert_locked(const std::string& key, ModelPtr model);

    RegistryOptions opt_;

    mutable std::mutex mutex_;
    // LRU list front = most recent; slots_ indexes it by key.
    std::list<std::pair<std::string, ModelPtr>> lru_;
    std::unordered_map<std::string, std::list<std::pair<std::string, ModelPtr>>::iterator>
        slots_;
    std::unordered_map<std::string, std::shared_future<ModelPtr>> inflight_;
    RegistryStats stats_;  // guarded by mutex_
};

}  // namespace atmor::rom
