// Thread-safe reduced-model store: reduce once, serve everyone.
//
// Keys are stable strings composed from (circuit id, parameters, reduction
// options) -- circuits::*Options::key() provides the circuit part. Lookup
// tiers, cheapest first:
//   1. in-memory LRU of live ReducedModel handles (bounded; eviction only
//      drops the memory slot, outstanding shared_ptrs stay valid),
//   2. on-disk artifact directory (optional): rom::io-framed entries that
//      store the FULL key ahead of the model. Files are NAMED by the FNV-1a
//      hash of the key, but a load is only accepted when the stored key
//      matches -- hash collisions and foreign files rebuild instead of
//      serving the wrong model,
//   3. the caller-supplied builder (the expensive offline reduction).
// Concurrent get_or_build calls for the SAME key are single-flight: exactly
// one caller runs the builder, the rest block on its shared_future and
// receive the same handle (pinned by test_rom_registry). Distinct keys build
// concurrently.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "rom/family_artifact.hpp"
#include "rom/reduced_model.hpp"

namespace atmor::rom {

struct RegistryOptions {
    /// Bound on live in-memory models (LRU eviction past it).
    std::size_t max_memory_models = 8;
    /// Artifact directory for the disk tier; empty disables it. Created on
    /// construction when missing.
    std::string artifact_dir;
};

struct RegistryStats {
    long lookups = 0;      ///< get_or_build calls
    long memory_hits = 0;  ///< served from the LRU tier
    long coalesced = 0;    ///< joined another caller's in-flight build
    long disk_hits = 0;    ///< loaded from the artifact tier
    long builds = 0;       ///< builder invocations (the expensive path)
    long evictions = 0;    ///< LRU slots reclaimed
    long disk_errors = 0;  ///< unreadable/corrupt artifacts (fell back to build)
    // -- Family artifact tier (sectioned v4 + shared block store). ----------
    long family_saves = 0;    ///< put_family calls that persisted an artifact
    long family_loads = 0;    ///< open_family calls that mapped an artifact
    long blocks_written = 0;  ///< content blocks newly added to the store
    long blocks_shared = 0;   ///< externalized blocks already present (dedup)
};

class Registry {
public:
    using Builder = std::function<ReducedModel()>;

    explicit Registry(RegistryOptions opt = {});

    /// The model for `key`, from the cheapest tier that has it; on a full
    /// miss, runs `build` exactly once across all concurrent callers and
    /// (when the disk tier is enabled) persists the artifact. A builder
    /// exception propagates to every waiting caller and leaves no entry
    /// behind, so the next lookup retries.
    [[nodiscard]] std::shared_ptr<const ReducedModel> get_or_build(const std::string& key,
                                                                   const Builder& build);

    /// Memory-tier peek (no disk probe, no build, no LRU touch); nullptr
    /// when not resident.
    [[nodiscard]] std::shared_ptr<const ReducedModel> cached(const std::string& key) const;

    /// Artifact path for `key` (empty string when the disk tier is off).
    [[nodiscard]] std::string artifact_path(const std::string& key) const;

    /// Sectioned family artifact path for `family_id` (empty when the disk
    /// tier is off).
    [[nodiscard]] std::string family_artifact_path(const std::string& family_id) const;

    /// Persist a compressed family as a sectioned v4 artifact. Content
    /// blocks at or above `kExternalBlockBytes` are externalized into the
    /// shared <artifact_dir>/blocks store -- written once per content hash,
    /// so identical blocks across families (a shared union basis, repeated
    /// member payloads) occupy disk once. Returns the artifact path.
    /// Requires the disk tier (throws IoError{open_failed} otherwise).
    std::string put_family(const CompressedFamily& cf);

    /// mmap the family artifact saved under `family_id` (lazy member
    /// materialization; see rom::FamilyArtifact). Typed IoError on a
    /// missing/damaged artifact or a disabled disk tier.
    [[nodiscard]] FamilyArtifact open_family(const std::string& family_id);

    /// Blocks smaller than this stay inline (a tiny file per coefficient
    /// block would cost more in metadata than the dedup saves).
    static constexpr std::size_t kExternalBlockBytes = 4096;

    /// Per-field consistent snapshot (each field one relaxed atomic load);
    /// takes no lock, so stats polling never contends with lookups or an
    /// in-flight build.
    [[nodiscard]] RegistryStats stats() const;
    [[nodiscard]] std::size_t memory_count() const;
    [[nodiscard]] const RegistryOptions& options() const { return opt_; }

private:
    using ModelPtr = std::shared_ptr<const ReducedModel>;

    /// Insert into the LRU front, evicting past capacity. Caller holds mutex_.
    void insert_locked(const std::string& key, ModelPtr model);

    /// Relaxed-atomic counters behind the RegistryStats snapshot. Lock-free
    /// on purpose: the flight leader bumps disk_hits/builds/disk_errors from
    /// the MIDDLE of a cold build, and with plain counters those bumps would
    /// reacquire mutex_ and stall warm lookups behind a build in progress.
    struct AtomicStats {
        std::atomic<long> lookups{0};
        std::atomic<long> memory_hits{0};
        std::atomic<long> coalesced{0};
        std::atomic<long> disk_hits{0};
        std::atomic<long> builds{0};
        std::atomic<long> evictions{0};
        std::atomic<long> disk_errors{0};
        std::atomic<long> family_saves{0};
        std::atomic<long> family_loads{0};
        std::atomic<long> blocks_written{0};
        std::atomic<long> blocks_shared{0};
    };

    RegistryOptions opt_;

    mutable std::mutex mutex_;
    // LRU list front = most recent; slots_ indexes it by key.
    std::list<std::pair<std::string, ModelPtr>> lru_;
    std::unordered_map<std::string, std::list<std::pair<std::string, ModelPtr>>::iterator>
        slots_;
    std::unordered_map<std::string, std::shared_future<ModelPtr>> inflight_;
    AtomicStats stats_;  // lock-free; snapshot via stats()
};

}  // namespace atmor::rom
