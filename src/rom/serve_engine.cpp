#include "rom/serve_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/key_format.hpp"
#include "util/timer.hpp"

namespace atmor::rom {

namespace {

/// Serving backends get a deeper factorisation cache than the library
/// default: a hot model is probed at many grid shifts and all of them should
/// replay across queries.
constexpr std::size_t kServeCacheSlots = 64;

/// Bound on distinct transient configurations whose warm Newton
/// factorisations a model keeps alive simultaneously.
constexpr std::size_t kMaxWarmStarts = 8;

/// Bound on live per-model serving states: keyed models, family members and
/// per-tolerance fallback builds all land in states_, and parametric sweep
/// traffic can mint distinct keys without limit.
constexpr std::size_t kMaxModelStates = 128;

std::shared_ptr<la::SolverBackend> make_freq_backend(const volterra::Qldae& rom) {
    if (rom.g1_op().is_sparse())
        return std::make_shared<la::SparseLuBackend>(kServeCacheSlots);
    // Dense ROMs (the Galerkin output) take one Schur pass per model; every
    // grid shift afterwards is a triangular backsolve.
    return std::make_shared<la::SchurBackend>(kServeCacheSlots);
}

std::shared_ptr<la::SolverBackend> make_transient_backend(const volterra::Qldae& rom) {
    if (rom.g1_op().is_sparse())
        return std::make_shared<la::SparseLuBackend>(kServeCacheSlots);
    return std::make_shared<la::DenseLuBackend>(kServeCacheSlots);
}

void accumulate(la::SolverStats& acc, const la::SolverStats& s) {
    acc.factorizations += s.factorizations;
    acc.cache_misses += s.cache_misses;
    acc.cache_hits += s.cache_hits;
    acc.solves += s.solves;
    acc.max_factor_dim = std::max(acc.max_factor_dim, s.max_factor_dim);
}

/// The build-time accuracy contract a model's provenance records.
ErrorCertificate certificate_of(const ReducedModel& m) {
    ErrorCertificate cert;
    cert.method = m.provenance.method;
    cert.tol = m.provenance.tol;
    cert.band_min = m.provenance.band_min;
    cert.band_max = m.provenance.band_max;
    cert.estimated_error = m.provenance.estimated_error;
    cert.expansion_points = static_cast<int>(m.provenance.expansion_points.size());
    cert.order = m.order;
    return cert;
}

}  // namespace

ServeEngine::ServeEngine(std::shared_ptr<Registry> registry)
    : registry_(std::move(registry)) {
    ATMOR_REQUIRE(registry_ != nullptr, "ServeEngine: null registry");
}

std::shared_ptr<const ReducedModel> ServeEngine::model(const std::string& key,
                                                       const Registry::Builder& build) {
    return state_for(key, build)->model;
}

std::shared_ptr<ServeEngine::ModelState> ServeEngine::make_state(
    std::shared_ptr<const ReducedModel> model) {
    auto st = std::make_shared<ModelState>();
    st->model = std::move(model);
    st->evaluator = std::make_shared<volterra::TransferEvaluator>(
        st->model->rom, make_freq_backend(st->model->rom));
    st->transient_backend = make_transient_backend(st->model->rom);
    return st;
}

void ServeEngine::bound_states_locked(const std::string& keep_key) {
    while (states_.size() > kMaxModelStates) {
        auto victim = states_.end();
        for (auto it = states_.begin(); it != states_.end(); ++it) {
            if (it->first == keep_key) continue;
            if (victim == states_.end() || it->second->last_used < victim->second->last_used)
                victim = it;
        }
        if (victim == states_.end()) break;
        accumulate(evicted_solver_, victim->second->evaluator->backend()->stats());
        accumulate(evicted_solver_, victim->second->transient_backend->stats());
        states_.erase(victim);
    }
}

std::shared_ptr<ServeEngine::ModelState> ServeEngine::state_for(const std::string& key,
                                                                const Registry::Builder& build) {
    // Resolve through the registry OUTSIDE the engine lock: a cold build can
    // take minutes and must not stall queries against other models.
    std::shared_ptr<const ReducedModel> m = registry_->get_or_build(key, build);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = states_.find(key);
        if (it != states_.end() && it->second->model == m) {
            it->second->last_used = ++state_tick_;
            return it->second;
        }
    }
    // Construct outside the lock too (ROM copy + cache sizing); on a race
    // the first insertion wins and the loser's state is dropped.
    std::shared_ptr<ModelState> fresh = make_state(std::move(m));
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<ModelState>& st = states_[key];
    if (!st || st->model != fresh->model) {
        if (st) {
            // The key's model was rebuilt: fold the superseded state's
            // counters in so stats() stays monotonic across replacement,
            // exactly like LRU eviction does.
            accumulate(evicted_solver_, st->evaluator->backend()->stats());
            accumulate(evicted_solver_, st->transient_backend->stats());
        }
        st = std::move(fresh);
    }
    st->last_used = ++state_tick_;
    std::shared_ptr<ModelState> out = st;  // st invalidates if eviction rehashes
    bound_states_locked(key);
    return out;
}

std::shared_ptr<ServeEngine::ModelState> ServeEngine::member_state(const std::string& family_id,
                                                                   int member,
                                                                   const FamilyMember& fm) {
    const std::string key = "family:" + family_id + "#" + std::to_string(member) + ":" +
                            std::to_string(fm.model.provenance.basis_hash);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = states_.find(key);
        if (it != states_.end()) {
            it->second->last_used = ++state_tick_;
            return it->second;
        }
    }
    std::shared_ptr<ModelState> fresh =
        make_state(std::make_shared<const ReducedModel>(fm.model));
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<ModelState>& st = states_[key];
    if (!st) st = std::move(fresh);
    st->last_used = ++state_tick_;
    std::shared_ptr<ModelState> out = st;
    bound_states_locked(key);
    return out;
}

ErrorCertificate ServeEngine::certificate(const std::string& key,
                                          const Registry::Builder& build) {
    ErrorCertificate cert = certificate_of(*state_for(key, build)->model);
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.certificate_queries;
    return cert;
}

std::vector<la::ZMatrix> ServeEngine::frequency_response(const std::string& key,
                                                         const Registry::Builder& build,
                                                         const std::vector<la::Complex>& grid) {
    ATMOR_REQUIRE(!grid.empty(), "ServeEngine::frequency_response: empty frequency grid");
    const std::shared_ptr<ModelState> st = state_for(key, build);
    util::Timer timer;
    std::vector<la::ZMatrix> out = st->evaluator->output_h1_sweep(grid);
    note_query(timer.seconds(), static_cast<long>(grid.size()), -1);
    return out;
}

struct ServeEngine::FamilyView {
    const std::string& family_id;
    const pmor::ParamSpace& space;
    double tol = 0.0;
    const std::vector<CoverageCell>& cells;
    int member_count = 0;
    /// Materialize (or alias) member `i`; the lazy artifact path decodes the
    /// member's sections here, so the core calls it only for members a query
    /// actually serves.
    std::function<std::shared_ptr<const FamilyMember>(int)> member;

    [[nodiscard]] int locate(const pmor::Point& coords) const {
        int best = -1;
        double best_dist = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const double d = space.distance(coords, cells[i].coords);
            if (d < best_dist) {
                best_dist = d;
                best = static_cast<int>(i);
            }
        }
        return best;
    }
};

ParametricAnswer ServeEngine::serve_parametric(const Family& family, const pmor::Point& coords,
                                               const std::vector<la::Complex>& grid,
                                               const ParametricOptions& opt) {
    const FamilyView view{
        family.family_id, family.space, family.tol, family.cells,
        static_cast<int>(family.members.size()),
        [&family](int i) {
            // Non-owning alias: the family outlives the query by contract.
            return std::shared_ptr<const FamilyMember>(
                std::shared_ptr<const FamilyMember>{},
                &family.members[static_cast<std::size_t>(i)]);
        }};
    return serve_parametric_impl(view, coords, grid, opt);
}

ParametricAnswer ServeEngine::serve_parametric(const FamilyArtifact& family,
                                               const pmor::Point& coords,
                                               const std::vector<la::Complex>& grid,
                                               const ParametricOptions& opt) {
    const FamilyView view{family.family_id(), family.space(),        family.tol(),
                          family.cells(),     family.member_count(),
                          [&family](int i) { return family.member(i); }};
    return serve_parametric_impl(view, coords, grid, opt);
}

ParametricAnswer ServeEngine::serve_parametric_impl(const FamilyView& view,
                                                    const pmor::Point& coords,
                                                    const std::vector<la::Complex>& grid,
                                                    const ParametricOptions& opt) {
    ATMOR_REQUIRE(!grid.empty(), "ServeEngine::serve_parametric: empty frequency grid");
    ATMOR_REQUIRE(view.member_count > 0, "ServeEngine::serve_parametric: family is empty");
    view.space.require_inside(coords, "ServeEngine::serve_parametric");
    const double tol = opt.tol > 0.0 ? opt.tol : view.tol;
    ATMOR_REQUIRE(tol > 0.0, "ServeEngine::serve_parametric: no tolerance (family tol is 0)");
    util::Timer timer;
    ParametricAnswer ans;

    const int cell_index = view.locate(coords);
    const CoverageCell* cell =
        cell_index >= 0 ? &view.cells[static_cast<std::size_t>(cell_index)] : nullptr;
    // Families are public aggregates ("assemble by hand" is supported), so
    // the coverage table's member references are validated here like
    // load_family validates them -- a typed error, never an OOB read.
    if (cell)
        ATMOR_REQUIRE(cell->best >= -1 && cell->best < view.member_count &&
                          cell->second >= -1 && cell->second < view.member_count,
                      "ServeEngine::serve_parametric: coverage cell ["
                          << view.space.key(cell->coords) << "] references a missing member");

    bool blended = false;
    if (cell && cell->best >= 0 && cell->best_error <= tol) {
        // -- Certified member path. ----------------------------------------
        ans.member = cell->best;
        const std::shared_ptr<const FamilyMember> best = view.member(cell->best);
        ans.response = member_state(view.family_id, cell->best, *best)
                           ->evaluator->output_h1_sweep(grid);
        double certified_error = cell->best_error;

        if (opt.blend && cell->second >= 0 && cell->second_error <= tol) {
            const std::shared_ptr<const FamilyMember> second = view.member(cell->second);
            const double d_best = view.space.distance(coords, best->coords);
            const double d_second = view.space.distance(coords, second->coords);
            const double w =
                d_best + d_second <= 0.0 ? 1.0 : d_second / (d_best + d_second);
            if (w < 1.0) {
                const std::vector<la::ZMatrix> other =
                    member_state(view.family_id, cell->second, *second)
                        ->evaluator->output_h1_sweep(grid);
                for (std::size_t g = 0; g < ans.response.size(); ++g) {
                    ans.response[g] *= la::Complex(w, 0.0);
                    ans.response[g] += la::Complex(1.0 - w, 0.0) * other[g];
                }
                ans.blended_with = cell->second;
                ans.blend_weight = w;
                certified_error = std::max(certified_error, cell->second_error);
                blended = true;
            }
        }

        // The served contract: the member's band/method provenance with the
        // coverage cell's certified cross error (>= the member's own
        // build-time estimate) and the tolerance actually enforced.
        ans.certificate = certificate_of(best->model);
        ans.certificate.tol = tol;
        ans.certificate.estimated_error = certified_error;
    } else {
        // -- Rejection path: no member certifies under tol. ----------------
        ATMOR_REQUIRE(static_cast<bool>(opt.fallback_build),
                      "ServeEngine::serve_parametric: no family member certifies point ["
                          << view.space.key(coords) << "] under tol " << tol
                          << " and no fallback_build was provided");
        // The default key is tolerance-tagged: a later query at the same
        // point demanding a TIGHTER accuracy must not silently reuse a
        // looser cached fallback model.
        const std::string key =
            opt.fallback_key ? opt.fallback_key(coords)
                             : "family:" + view.family_id + "@" + view.space.key(coords) +
                                   "|fallback(tol=" + util::key_num(tol) + ")";
        const std::shared_ptr<ModelState> st =
            state_for(key, [&] { return opt.fallback_build(coords); });
        ans.fallback = true;
        ans.response = st->evaluator->output_h1_sweep(grid);
        ans.certificate = certificate_of(*st->model);
    }

    // Parametric traffic is accounted by its own counters, not the keyed
    // frequency_queries/points pair (a blended answer evaluates two sweeps
    // anyway); note_query still aggregates the latency fields.
    note_query(timer.seconds(), -1, -1);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.parametric_queries;
        if (ans.fallback) ++counters_.parametric_fallbacks;
        if (blended) ++counters_.parametric_blended;
    }
    return ans;
}

std::vector<ode::TransientResult> ServeEngine::transient_batch(
    const std::string& key, const Registry::Builder& build,
    const std::vector<ode::InputFn>& inputs, const ode::TransientOptions& opt) {
    ATMOR_REQUIRE(!inputs.empty(), "ServeEngine::transient_batch: empty waveform batch");
    const std::shared_ptr<ModelState> st = state_for(key, build);
    util::Timer timer;
    ode::TransientOptions o = opt;
    o.backend = st->transient_backend;

    // Stamp the warm Newton factorisation once per (model, step size,
    // method); every later batch with that configuration replays it, and
    // clients alternating configurations each keep theirs. Stamped at the
    // zero state/input (the rest state every deviation model starts from),
    // so it is batch-content independent; a waveform that drives Newton off
    // the linearisation refactors privately inside run_implicit.
    ode::WarmStart warm;
    {
        const auto config =
            std::make_tuple(o.t_end, o.dt, static_cast<int>(o.method));
        std::lock_guard<std::mutex> lock(st->warm_mutex);
        auto it = st->warm.find(config);
        if (it == st->warm.end()) {
            if (st->warm.size() >= kMaxWarmStarts) {
                auto victim = st->warm.begin();
                for (auto cand = st->warm.begin(); cand != st->warm.end(); ++cand)
                    if (cand->second.second < victim->second.second) victim = cand;
                st->warm.erase(victim);
            }
            it = st->warm
                     .emplace(config, std::make_pair(ode::make_warm_start(st->model->rom, o),
                                                     std::uint64_t{0}))
                     .first;
        }
        it->second.second = ++st->warm_tick;
        warm = it->second.first;
    }

    std::vector<ode::TransientResult> out = ode::simulate_batch(st->model->rom, inputs, o, warm);
    note_query(timer.seconds(), -1, static_cast<long>(inputs.size()));
    return out;
}

void ServeEngine::note_query(double seconds, long freq_points, long waveforms) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (freq_points >= 0) {
        ++counters_.frequency_queries;
        counters_.frequency_points += freq_points;
    }
    if (waveforms >= 0) {
        ++counters_.transient_queries;
        counters_.transient_waveforms += waveforms;
    }
    counters_.busy_seconds += seconds;
    counters_.max_query_seconds = std::max(counters_.max_query_seconds, seconds);
}

ServeStats ServeEngine::stats() const {
    ServeStats s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s = counters_;
        accumulate(s.solver, evicted_solver_);
        for (const auto& [key, st] : states_) {
            (void)key;
            accumulate(s.solver, st->evaluator->backend()->stats());
            accumulate(s.solver, st->transient_backend->stats());
        }
    }
    s.registry = registry_->stats();
    return s;
}

}  // namespace atmor::rom
