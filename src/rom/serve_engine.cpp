#include "rom/serve_engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "rom/io.hpp"
#include "rom/reduced_model.hpp"
#include "util/check.hpp"
#include "util/key_format.hpp"
#include "util/timer.hpp"

namespace atmor::rom {

namespace {

/// Serving backends get a deeper factorisation cache than the library
/// default: a hot model is probed at many grid shifts and all of them should
/// replay across queries.
constexpr std::size_t kServeCacheSlots = 64;

/// Bound on distinct transient configurations whose warm Newton
/// factorisations a model keeps alive simultaneously.
constexpr std::size_t kMaxWarmStarts = 8;

std::shared_ptr<la::SolverBackend> make_freq_backend(const volterra::Qldae& rom) {
    if (rom.g1_op().is_sparse())
        return std::make_shared<la::SparseLuBackend>(kServeCacheSlots);
    // Dense ROMs (the Galerkin output) take one Schur pass per model; every
    // grid shift afterwards is a triangular backsolve.
    return std::make_shared<la::SchurBackend>(kServeCacheSlots);
}

std::shared_ptr<la::SolverBackend> make_transient_backend(const volterra::Qldae& rom) {
    if (rom.g1_op().is_sparse())
        return std::make_shared<la::SparseLuBackend>(kServeCacheSlots);
    return std::make_shared<la::DenseLuBackend>(kServeCacheSlots);
}

void accumulate(la::SolverStats& acc, const la::SolverStats& s) {
    acc.factorizations += s.factorizations;
    acc.cache_misses += s.cache_misses;
    acc.cache_hits += s.cache_hits;
    acc.solves += s.solves;
    acc.max_factor_dim = std::max(acc.max_factor_dim, s.max_factor_dim);
}

/// acc += v, relaxed (C++17 atomics have no floating-point fetch_add).
void add_relaxed(std::atomic<double>& acc, double v) {
    double cur = acc.load(std::memory_order_relaxed);
    while (!acc.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
    }
}

/// acc = max(acc, v), relaxed.
void max_relaxed(std::atomic<double>& acc, double v) {
    double cur = acc.load(std::memory_order_relaxed);
    while (cur < v && !acc.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

/// The build-time accuracy contract a model's provenance records.
ErrorCertificate certificate_of(const ReducedModel& m) {
    ErrorCertificate cert;
    cert.method = m.provenance.method;
    cert.tol = m.provenance.tol;
    cert.band_min = m.provenance.band_min;
    cert.band_max = m.provenance.band_max;
    cert.estimated_error = m.provenance.estimated_error;
    cert.expansion_points = static_cast<int>(m.provenance.expansion_points.size());
    cert.order = m.order;
    return cert;
}

}  // namespace

ServeEngine::ServeEngine(std::shared_ptr<Registry> registry, ServeOptions opt)
    : registry_(std::move(registry)),
      opt_(opt),
      shard_capacity_(std::max<std::size_t>(1, opt.max_model_states / kShardCount)) {
    ATMOR_REQUIRE(registry_ != nullptr, "ServeEngine: null registry");
    ATMOR_REQUIRE(opt_.coalesce_window_seconds >= 0.0,
                  "ServeEngine: negative coalesce window");
    ATMOR_REQUIRE(opt_.max_model_states >= 1, "ServeEngine: need at least one model state");
}

ServeEngine::Shard& ServeEngine::shard_for(const std::string& key) {
    return shards_[fnv1a(key.data(), key.size()) & (kShardCount - 1)];
}

std::shared_ptr<const ReducedModel> ServeEngine::model(const std::string& key,
                                                       const Registry::Builder& build) {
    return state_for(key, build)->model;
}

std::shared_ptr<ServeEngine::ModelState> ServeEngine::make_state(
    std::shared_ptr<const ReducedModel> model) {
    auto st = std::make_shared<ModelState>();
    st->model = std::move(model);
    st->evaluator = std::make_shared<volterra::TransferEvaluator>(
        st->model->rom, make_freq_backend(st->model->rom));
    st->transient_backend = make_transient_backend(st->model->rom);
    return st;
}

void ServeEngine::bound_shard_locked(Shard& shard, const std::string& keep_key) {
    while (shard.states.size() > shard_capacity_) {
        auto victim = shard.states.end();
        for (auto it = shard.states.begin(); it != shard.states.end(); ++it) {
            if (it->first == keep_key) continue;
            if (victim == shard.states.end() ||
                it->second->last_used < victim->second->last_used)
                victim = it;
        }
        if (victim == shard.states.end()) break;
        accumulate(shard.evicted_solver, victim->second->evaluator->backend()->stats());
        accumulate(shard.evicted_solver, victim->second->transient_backend->stats());
        shard.states.erase(victim);
    }
}

std::shared_ptr<ServeEngine::ModelState> ServeEngine::state_for(const std::string& key,
                                                                const Registry::Builder& build) {
    // Resolve through the registry OUTSIDE every engine lock: a cold build
    // can take minutes and must not stall queries against any other model --
    // the registry's single-flight map serialises only same-key callers.
    std::shared_ptr<const ReducedModel> m = registry_->get_or_build(key, build);
    Shard& shard = shard_for(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.states.find(key);
        if (it != shard.states.end() && it->second->model == m) {
            it->second->last_used = state_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
            return it->second;
        }
    }
    // Construct outside the lock too (ROM copy + cache sizing); on a race
    // the first insertion wins and the loser's state is dropped.
    std::shared_ptr<ModelState> fresh = make_state(std::move(m));
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::shared_ptr<ModelState>& st = shard.states[key];
    if (!st || st->model != fresh->model) {
        if (st) {
            // The key's model was rebuilt: fold the superseded state's
            // counters in so stats() stays monotonic across replacement,
            // exactly like LRU eviction does.
            accumulate(shard.evicted_solver, st->evaluator->backend()->stats());
            accumulate(shard.evicted_solver, st->transient_backend->stats());
        }
        st = std::move(fresh);
    }
    st->last_used = state_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::shared_ptr<ModelState> out = st;  // st invalidates if eviction rehashes
    bound_shard_locked(shard, key);
    return out;
}

std::shared_ptr<ServeEngine::ModelState> ServeEngine::member_state(const std::string& family_id,
                                                                   int member,
                                                                   const FamilyMember& fm) {
    const std::string key = "family:" + family_id + "#" + std::to_string(member) + ":" +
                            std::to_string(fm.model.provenance.basis_hash);
    Shard& shard = shard_for(key);
    {
        std::lock_guard<std::mutex> lock(shard.mutex);
        auto it = shard.states.find(key);
        if (it != shard.states.end()) {
            it->second->last_used = state_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
            return it->second;
        }
    }
    std::shared_ptr<ModelState> fresh =
        make_state(std::make_shared<const ReducedModel>(fm.model));
    std::lock_guard<std::mutex> lock(shard.mutex);
    std::shared_ptr<ModelState>& st = shard.states[key];
    if (!st) st = std::move(fresh);
    st->last_used = state_tick_.fetch_add(1, std::memory_order_relaxed) + 1;
    std::shared_ptr<ModelState> out = st;
    bound_shard_locked(shard, key);
    return out;
}

std::vector<la::ZMatrix> ServeEngine::coalesced_sweep(ModelState& st,
                                                      const std::vector<la::Complex>& grid) {
    SweepCoalescer& co = st.coalescer;
    {
        std::unique_lock<std::mutex> lock(co.mutex);
        if (co.leader_active) {
            // Another request's sweep on this model is collecting or in
            // flight: park on its batch. The leader evaluates our points in
            // its next round and fulfills the promise (or propagates the
            // round's exception).
            auto waiter = std::make_unique<SweepWaiter>();
            waiter->grid = &grid;
            std::future<std::vector<la::ZMatrix>> answer = waiter->promise.get_future();
            co.pending.push_back(std::move(waiter));
            lock.unlock();
            counters_.coalesced_queries.fetch_add(1, std::memory_order_relaxed);
            return answer.get();
        }
        co.leader_active = true;
    }

    // Optional collection window: let simultaneous requests land before the
    // first round. Off by default -- with no window, merging happens only
    // when a later request overlaps an in-flight solve, so an uncontended
    // query pays nothing.
    if (opt_.coalesce_window_seconds > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opt_.coalesce_window_seconds));

    std::vector<la::ZMatrix> own;
    bool own_done = false;
    std::vector<std::unique_ptr<SweepWaiter>> batch;
    try {
        while (true) {
            {
                std::lock_guard<std::mutex> lock(co.mutex);
                batch.swap(co.pending);  // batch is empty here: swap = take all
                if (own_done && batch.empty()) {
                    co.leader_active = false;
                    break;
                }
            }
            // Union of the batch's distinct grid points, first-seen order.
            // Each point is evaluated ONCE and scattered to every request
            // that asked for it: a point's value is a pure function of its
            // shift, so the copy is bit-identical to evaluating that
            // request's grid alone.
            std::map<std::pair<double, double>, std::size_t> point_index;
            std::vector<la::Complex> unique;
            long requested = 0;
            const auto add_points = [&](const std::vector<la::Complex>& g) {
                requested += static_cast<long>(g.size());
                for (const la::Complex& s : g) {
                    const auto [it, fresh] =
                        point_index.emplace(std::make_pair(s.real(), s.imag()), unique.size());
                    (void)it;
                    if (fresh) unique.push_back(s);
                }
            };
            if (!own_done) add_points(grid);
            for (const auto& w : batch) add_points(*w->grid);

            // One blocked multi-RHS sweep over the union (each point solves
            // all input columns in one factor pass; the grid fans out on the
            // global pool).
            const std::vector<la::ZMatrix> results = st.evaluator->output_h1_sweep(unique);

            const auto scatter = [&](const std::vector<la::Complex>& g) {
                std::vector<la::ZMatrix> out;
                out.reserve(g.size());
                for (const la::Complex& s : g)
                    out.push_back(
                        results[point_index.at(std::make_pair(s.real(), s.imag()))]);
                return out;
            };
            const int round_requests = (own_done ? 0 : 1) + static_cast<int>(batch.size());
            if (!own_done) {
                own = scatter(grid);
                own_done = true;
            }
            for (auto& w : batch) w->promise.set_value(scatter(*w->grid));
            batch.clear();

            if (round_requests > 1)
                counters_.coalesced_batches.fetch_add(1, std::memory_order_relaxed);
            counters_.deduped_points.fetch_add(requested - static_cast<long>(unique.size()),
                                               std::memory_order_relaxed);
        }
    } catch (...) {
        // Fail every parked request with this round's exception and resign
        // leadership (drain + resign under ONE lock hold, so a request
        // enqueueing afterwards finds no leader and serves itself).
        std::vector<std::unique_ptr<SweepWaiter>> orphans;
        {
            std::lock_guard<std::mutex> lock(co.mutex);
            orphans.swap(co.pending);
            co.leader_active = false;
        }
        const std::exception_ptr err = std::current_exception();
        for (auto& w : batch) w->promise.set_exception(err);
        for (auto& w : orphans) w->promise.set_exception(err);
        throw;
    }
    return own;
}

// ---------------------------------------------------------------------------
// Legacy entrypoints: thin wrappers over the unified dispatch. Each builds
// the ServeRequest its signature always described and rethrows whatever
// dispatch throws, so the pre-redesign pins (answers, exception types and
// messages, counter accounting) hold bit-identical.
// ---------------------------------------------------------------------------

ErrorCertificate ServeEngine::certificate(const std::string& key,
                                          const Registry::Builder& build) {
    ServeRequest req;
    req.body = CertificateRequest{ModelRef::in_process(key, build)};
    return dispatch(req).certificate;
}

std::vector<la::ZMatrix> ServeEngine::frequency_response(const std::string& key,
                                                         const Registry::Builder& build,
                                                         const std::vector<la::Complex>& grid) {
    ServeRequest req;
    req.body = FrequencySweepRequest{ModelRef::in_process(key, build), grid};
    return std::move(dispatch(req).response);
}

struct ServeEngine::FamilyView {
    const std::string& family_id;
    const pmor::ParamSpace& space;
    double tol = 0.0;
    const std::vector<CoverageCell>& cells;
    int member_count = 0;
    /// Materialize (or alias) member `i`; the lazy artifact path decodes the
    /// member's sections here, so the core calls it only for members a query
    /// actually serves.
    std::function<std::shared_ptr<const FamilyMember>(int)> member;

    [[nodiscard]] int locate(const pmor::Point& coords) const {
        int best = -1;
        double best_dist = std::numeric_limits<double>::infinity();
        for (std::size_t i = 0; i < cells.size(); ++i) {
            const double d = space.distance(coords, cells[i].coords);
            if (d < best_dist) {
                best_dist = d;
                best = static_cast<int>(i);
            }
        }
        return best;
    }
};

namespace {

/// The wrapper-shared ParametricQueryRequest shape (in-process pointer form).
ServeRequest make_parametric_request(const std::string& family_id, const pmor::Point& coords,
                                     const std::vector<la::Complex>& grid,
                                     const ParametricOptions& opt) {
    ServeRequest req;
    ParametricQueryRequest body;
    body.family_id = family_id;
    body.coords = coords;
    body.grid = grid;
    body.tol = opt.tol;
    body.blend = opt.blend;
    body.options = opt;
    req.body = std::move(body);
    return req;
}

ParametricAnswer to_parametric_answer(ServeResponse&& resp) {
    ParametricAnswer ans;
    ans.response = std::move(resp.response);
    ans.certificate = std::move(resp.certificate);
    ans.member = resp.member;
    ans.blended_with = resp.blended_with;
    ans.blend_weight = resp.blend_weight;
    ans.fallback = resp.fallback;
    return ans;
}

}  // namespace

ParametricAnswer ServeEngine::serve_parametric(const Family& family, const pmor::Point& coords,
                                               const std::vector<la::Complex>& grid,
                                               const ParametricOptions& opt) {
    ServeRequest req = make_parametric_request(family.family_id, coords, grid, opt);
    std::get<ParametricQueryRequest>(req.body).family = &family;
    return to_parametric_answer(dispatch(req));
}

ParametricAnswer ServeEngine::serve_parametric(const FamilyArtifact& family,
                                               const pmor::Point& coords,
                                               const std::vector<la::Complex>& grid,
                                               const ParametricOptions& opt) {
    ServeRequest req = make_parametric_request(family.family_id(), coords, grid, opt);
    std::get<ParametricQueryRequest>(req.body).artifact = &family;
    return to_parametric_answer(dispatch(req));
}

namespace {

ServeRequest make_batch_request(const std::string& family_id,
                                const std::vector<pmor::Point>& coords,
                                const std::vector<la::Complex>& grid,
                                const ParametricOptions& opt) {
    ServeRequest req;
    ParametricBatchRequest body;
    body.family_id = family_id;
    body.coords = coords;
    body.grid = grid;
    body.tol = opt.tol;
    body.blend = opt.blend;
    body.options = opt;
    req.body = std::move(body);
    return req;
}

}  // namespace

ServeResponse ServeEngine::serve_parametric_batch(const Family& family,
                                                  const std::vector<pmor::Point>& coords,
                                                  const std::vector<la::Complex>& grid,
                                                  const ParametricOptions& opt) {
    ServeRequest req = make_batch_request(family.family_id, coords, grid, opt);
    std::get<ParametricBatchRequest>(req.body).family = &family;
    return dispatch(req);
}

ServeResponse ServeEngine::serve_parametric_batch(const FamilyArtifact& family,
                                                  const std::vector<pmor::Point>& coords,
                                                  const std::vector<la::Complex>& grid,
                                                  const ParametricOptions& opt) {
    ServeRequest req = make_batch_request(family.family_id(), coords, grid, opt);
    std::get<ParametricBatchRequest>(req.body).artifact = &family;
    return dispatch(req);
}

void ServeEngine::with_family_view(const Family* family, const FamilyArtifact* artifact,
                                   const std::string& family_id, bool allow_fallback,
                                   ParametricOptions& eff,
                                   const std::function<void(const FamilyView&)>& fn) {
    if (family != nullptr) {
        const FamilyView view{
            family->family_id, family->space, family->tol, family->cells,
            static_cast<int>(family->members.size()),
            [family](int i) {
                // Non-owning alias: the family outlives the query by
                // contract.
                return std::shared_ptr<const FamilyMember>(
                    std::shared_ptr<const FamilyMember>{},
                    &family->members[static_cast<std::size_t>(i)]);
            }};
        fn(view);
    } else if (artifact != nullptr) {
        const FamilyView view{artifact->family_id(), artifact->space(),
                              artifact->tol(),       artifact->cells(),
                              artifact->member_count(),
                              [artifact](int i) { return artifact->member(i); }};
        fn(view);
    } else {
        // Wire form: the family is named by id. Hosted defaults supply what
        // a socket cannot carry -- the fallback hooks and a default
        // tolerance.
        HostedFamily hf = hosted_family(family_id);
        if (!eff.fallback_build) eff.fallback_build = hf.defaults.fallback_build;
        if (!eff.fallback_key) eff.fallback_key = hf.defaults.fallback_key;
        if (eff.tol <= 0.0) eff.tol = hf.defaults.tol;
        if (!allow_fallback) eff.fallback_build = nullptr;
        const FamilyArtifact& fam = hf.artifact;
        const FamilyView view{fam.family_id(), fam.space(),        fam.tol(), fam.cells(),
                              fam.member_count(),
                              [&fam](int i) { return fam.member(i); }};
        fn(view);
    }
}

ParametricAnswer ServeEngine::serve_parametric_impl(const FamilyView& view,
                                                    const pmor::Point& coords,
                                                    const std::vector<la::Complex>& grid,
                                                    const ParametricOptions& opt) {
    ATMOR_REQUIRE(!grid.empty(), "ServeEngine::serve_parametric: empty frequency grid");
    ATMOR_REQUIRE(view.member_count > 0, "ServeEngine::serve_parametric: family is empty");
    view.space.require_inside(coords, "ServeEngine::serve_parametric");
    const double tol = opt.tol > 0.0 ? opt.tol : view.tol;
    ATMOR_REQUIRE(tol > 0.0, "ServeEngine::serve_parametric: no tolerance (family tol is 0)");
    util::Timer timer;
    ParametricAnswer ans;

    const int cell_index = view.locate(coords);
    const CoverageCell* cell =
        cell_index >= 0 ? &view.cells[static_cast<std::size_t>(cell_index)] : nullptr;
    // Families are public aggregates ("assemble by hand" is supported), so
    // the coverage table's member references are validated here like
    // load_family validates them -- a typed error, never an OOB read.
    if (cell)
        ATMOR_REQUIRE(cell->best >= -1 && cell->best < view.member_count &&
                          cell->second >= -1 && cell->second < view.member_count,
                      "ServeEngine::serve_parametric: coverage cell ["
                          << view.space.key(cell->coords) << "] references a missing member");

    bool blended = false;
    if (cell && cell->best >= 0 && cell->best_error <= tol) {
        // -- Certified member path. ----------------------------------------
        ans.member = cell->best;
        const std::shared_ptr<const FamilyMember> best = view.member(cell->best);
        ans.response =
            coalesced_sweep(*member_state(view.family_id, cell->best, *best), grid);
        double certified_error = cell->best_error;

        if (opt.blend && cell->second >= 0 && cell->second_error <= tol) {
            const std::shared_ptr<const FamilyMember> second = view.member(cell->second);
            const double d_best = view.space.distance(coords, best->coords);
            const double d_second = view.space.distance(coords, second->coords);
            const double w =
                d_best + d_second <= 0.0 ? 1.0 : d_second / (d_best + d_second);
            if (w < 1.0) {
                const std::vector<la::ZMatrix> other = coalesced_sweep(
                    *member_state(view.family_id, cell->second, *second), grid);
                for (std::size_t g = 0; g < ans.response.size(); ++g) {
                    ans.response[g] *= la::Complex(w, 0.0);
                    ans.response[g] += la::Complex(1.0 - w, 0.0) * other[g];
                }
                ans.blended_with = cell->second;
                ans.blend_weight = w;
                certified_error = std::max(certified_error, cell->second_error);
                blended = true;
            }
        }

        // The served contract: the member's band/method provenance with the
        // coverage cell's certified cross error (>= the member's own
        // build-time estimate) and the tolerance actually enforced.
        ans.certificate = certificate_of(best->model);
        ans.certificate.tol = tol;
        ans.certificate.estimated_error = certified_error;
    } else {
        // -- Rejection path: no member certifies under tol. ----------------
        ATMOR_REQUIRE(static_cast<bool>(opt.fallback_build),
                      "ServeEngine::serve_parametric: no family member certifies point ["
                          << view.space.key(coords) << "] under tol " << tol
                          << " and no fallback_build was provided");
        // The default key is tolerance-tagged: a later query at the same
        // point demanding a TIGHTER accuracy must not silently reuse a
        // looser cached fallback model.
        const std::string key =
            opt.fallback_key ? opt.fallback_key(coords)
                             : "family:" + view.family_id + "@" + view.space.key(coords) +
                                   "|fallback(tol=" + util::key_num(tol) + ")";
        // state_for runs the build through the registry outside every engine
        // lock, so a slow fallback never blocks warm member serves.
        const std::shared_ptr<ModelState> st =
            state_for(key, [&] { return opt.fallback_build(coords); });
        ans.fallback = true;
        ans.response = coalesced_sweep(*st, grid);
        ans.certificate = certificate_of(*st->model);
    }

    // Parametric traffic is accounted by its own counters, not the keyed
    // frequency_queries/points pair (a blended answer evaluates two sweeps
    // anyway); note_query still aggregates the latency fields.
    note_query(timer.seconds(), -1, -1);
    counters_.parametric_queries.fetch_add(1, std::memory_order_relaxed);
    if (ans.fallback) counters_.parametric_fallbacks.fetch_add(1, std::memory_order_relaxed);
    if (blended) counters_.parametric_blended.fetch_add(1, std::memory_order_relaxed);
    return ans;
}

std::vector<ode::TransientResult> ServeEngine::transient_batch(
    const std::string& key, const Registry::Builder& build,
    const std::vector<ode::InputFn>& inputs, const ode::TransientOptions& opt) {
    ServeRequest req;
    TransientBatchRequest body;
    body.model = ModelRef::in_process(key, build);
    body.raw_inputs = inputs;
    // The spec round-trip loses only opt.backend, which this entrypoint
    // always overrode with the model's serving backend anyway.
    body.options = TransientSpec::from_options(opt);
    req.body = std::move(body);
    return std::move(dispatch(req).transients);
}

std::vector<ode::TransientResult> ServeEngine::run_transient_batch(
    ModelState& stref, const std::vector<ode::InputFn>& inputs,
    const ode::TransientOptions& opt) {
    ModelState* st = &stref;
    util::Timer timer;
    ode::TransientOptions o = opt;
    o.backend = st->transient_backend;

    // Stamp the warm Newton factorisation once per (model, step size,
    // method); every later batch with that configuration replays it, and
    // clients alternating configurations each keep theirs. Stamped at the
    // zero state/input (the rest state every deviation model starts from),
    // so it is batch-content independent; a waveform that drives Newton off
    // the linearisation refactors privately inside run_implicit.
    ode::WarmStart warm;
    {
        const auto config =
            std::make_tuple(o.t_end, o.dt, static_cast<int>(o.method));
        std::lock_guard<std::mutex> lock(st->warm_mutex);
        auto it = st->warm.find(config);
        if (it == st->warm.end()) {
            if (st->warm.size() >= kMaxWarmStarts) {
                auto victim = st->warm.begin();
                for (auto cand = st->warm.begin(); cand != st->warm.end(); ++cand)
                    if (cand->second.second < victim->second.second) victim = cand;
                st->warm.erase(victim);
            }
            it = st->warm
                     .emplace(config, std::make_pair(ode::make_warm_start(st->model->rom, o),
                                                     std::uint64_t{0}))
                     .first;
        }
        it->second.second = ++st->warm_tick;
        warm = it->second.first;
    }

    std::vector<ode::TransientResult> out = ode::simulate_batch(st->model->rom, inputs, o, warm);
    note_query(timer.seconds(), -1, static_cast<long>(inputs.size()));
    return out;
}

// ---------------------------------------------------------------------------
// Unified dispatch (the api_redesign core).
// ---------------------------------------------------------------------------

std::shared_ptr<ServeEngine::ModelState> ServeEngine::resolve(const ModelRef& ref) {
    switch (ref.kind) {
        case ModelRef::Kind::registry_key: {
            if (ref.builder) return state_for(ref.key, ref.builder);
            // No builder: resolvable only from the registry's memory/disk
            // tiers. The probe builder turns a full miss into a typed
            // UnresolvedError instead of a silent rebuild of nothing.
            const std::string& key = ref.key;
            return state_for(key, [&key]() -> ReducedModel {
                throw UnresolvedError("ServeEngine: registry key '" + key +
                                      "' resolves to no cached model or artifact and the "
                                      "request carries no build recipe");
            });
        }
        case ModelRef::Kind::artifact_path: {
            // Cached under "artifact:<path>" so repeated wire queries load
            // the file once; IoError (missing/damaged artifact) propagates
            // typed.
            const std::string& path = ref.path;
            return state_for(ref.cache_key(), [&path] { return load_model(path); });
        }
        case ModelRef::Kind::build_spec: {
            SpecResolver resolver;
            {
                std::lock_guard<std::mutex> lock(catalog_mutex_);
                resolver = spec_resolver_;
            }
            if (!resolver)
                throw UnresolvedError("ServeEngine: request names build spec '" +
                                      ref.spec.key() +
                                      "' but no spec resolver is registered");
            const BuildSpec& spec = ref.spec;
            return state_for(ref.cache_key(), [&resolver, &spec] { return resolver(spec); });
        }
    }
    ATMOR_CHECK(false, "ServeEngine::resolve: unknown ModelRef kind");
    return nullptr;
}

void ServeEngine::set_spec_resolver(SpecResolver resolver) {
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    spec_resolver_ = std::move(resolver);
}

void ServeEngine::host_family(Family family, ParametricOptions defaults) {
    std::string id = family.family_id;
    HostedFamily hf{FamilyArtifact::from_family(std::move(family)), std::move(defaults)};
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    hosted_.insert_or_assign(std::move(id), std::move(hf));
}

void ServeEngine::host_family(FamilyArtifact family, ParametricOptions defaults) {
    std::string id = family.family_id();
    HostedFamily hf{std::move(family), std::move(defaults)};
    std::lock_guard<std::mutex> lock(catalog_mutex_);
    hosted_.insert_or_assign(std::move(id), std::move(hf));
}

ServeEngine::HostedFamily ServeEngine::hosted_family(const std::string& family_id) {
    {
        std::lock_guard<std::mutex> lock(catalog_mutex_);
        auto it = hosted_.find(family_id);
        if (it != hosted_.end()) return it->second;
    }
    // Fall through to the registry's family-artifact tier; the mapped
    // artifact joins the catalog (default options: no server-side fallback)
    // so the mmap + directory verification happens once per family.
    try {
        HostedFamily hf{registry_->open_family(family_id), ParametricOptions{}};
        std::lock_guard<std::mutex> lock(catalog_mutex_);
        auto [it, fresh] = hosted_.emplace(family_id, std::move(hf));
        (void)fresh;  // a racing host_family won: serve what it registered
        return it->second;
    } catch (const IoError& err) {
        if (err.kind() == IoErrorKind::open_failed)
            throw UnresolvedError("ServeEngine: family '" + family_id +
                                  "' is neither hosted nor in the registry's artifact "
                                  "tier");
        throw;  // a damaged artifact stays a typed io error
    }
}

ServeResponse ServeEngine::dispatch(const ServeRequest& req) {
    ServeResponse resp;
    resp.kind = req.kind();
    switch (req.kind()) {
        case RequestKind::frequency_sweep: {
            const auto& body = std::get<FrequencySweepRequest>(req.body);
            ATMOR_REQUIRE(!body.grid.empty(),
                          "ServeEngine::frequency_response: empty frequency grid");
            const std::shared_ptr<ModelState> st = resolve(body.model);
            util::Timer timer;
            resp.response = coalesced_sweep(*st, body.grid);
            note_query(timer.seconds(), static_cast<long>(body.grid.size()), -1);
            resp.certificate = certificate_of(*st->model);
            break;
        }
        case RequestKind::transient_batch: {
            const auto& body = std::get<TransientBatchRequest>(req.body);
            // raw_inputs (the in-process closure path) wins; wire requests
            // carry WaveformSpecs and instantiate here.
            std::vector<ode::InputFn> inputs = body.raw_inputs;
            if (inputs.empty()) {
                inputs.reserve(body.inputs.size());
                for (const WaveformSpec& spec : body.inputs)
                    inputs.push_back(spec.instantiate());
            }
            ATMOR_REQUIRE(!inputs.empty(),
                          "ServeEngine::transient_batch: empty waveform batch");
            const std::shared_ptr<ModelState> st = resolve(body.model);
            resp.transients = run_transient_batch(*st, inputs, body.options.to_options());
            resp.certificate = certificate_of(*st->model);
            break;
        }
        case RequestKind::parametric_query: {
            const auto& body = std::get<ParametricQueryRequest>(req.body);
            ParametricOptions eff = body.options;
            eff.tol = body.tol;
            eff.blend = body.blend;
            ParametricAnswer ans;
            with_family_view(body.family, body.artifact, body.family_id, body.allow_fallback,
                             eff, [&](const FamilyView& view) {
                                 ans = serve_parametric_impl(view, body.coords, body.grid, eff);
                             });
            resp.response = std::move(ans.response);
            resp.certificate = std::move(ans.certificate);
            resp.member = ans.member;
            resp.blended_with = ans.blended_with;
            resp.blend_weight = ans.blend_weight;
            resp.fallback = ans.fallback;
            break;
        }
        case RequestKind::parametric_batch: {
            const auto& body = std::get<ParametricBatchRequest>(req.body);
            ATMOR_REQUIRE(!body.coords.empty(),
                          "ServeEngine::parametric_batch: empty point batch");
            ParametricOptions eff = body.options;
            eff.tol = body.tol;
            eff.blend = body.blend;
            with_family_view(
                body.family, body.artifact, body.family_id, body.allow_fallback, eff,
                [&](const FamilyView& view) {
                    resp.response.reserve(body.coords.size() * body.grid.size());
                    resp.batch_member.reserve(body.coords.size());
                    resp.batch_error.reserve(body.coords.size());
                    resp.batch_fallback.reserve(body.coords.size());
                    double worst = -1.0;
                    for (const pmor::Point& p : body.coords) {
                        ParametricAnswer ans = serve_parametric_impl(view, p, body.grid, eff);
                        for (la::ZMatrix& m : ans.response)
                            resp.response.push_back(std::move(m));
                        resp.batch_member.push_back(ans.member);
                        resp.batch_error.push_back(ans.certificate.estimated_error);
                        resp.batch_fallback.push_back(ans.fallback ? 1 : 0);
                        // The batch certificate is the WORST point's: a
                        // client checking one certificate against tol gets
                        // the conservative answer for the whole batch.
                        if (ans.certificate.estimated_error > worst) {
                            worst = ans.certificate.estimated_error;
                            resp.certificate = std::move(ans.certificate);
                        }
                    }
                });
            break;
        }
        case RequestKind::certificate: {
            const auto& body = std::get<CertificateRequest>(req.body);
            resp.certificate = certificate_of(*resolve(body.model)->model);
            counters_.certificate_queries.fetch_add(1, std::memory_order_relaxed);
            break;
        }
    }
    return resp;
}

ServeResponse ServeEngine::serve(const ServeRequest& req) {
    const auto fail = [&req](util::ErrorCode code, const char* what) {
        ServeResponse resp;
        resp.kind = req.kind();
        resp.error.code = code;
        resp.error.message = what;
        return resp;
    };
    // Order matters: UnresolvedError IS-A PreconditionError, IoError and
    // InternalError are std::runtime_error.
    try {
        return dispatch(req);
    } catch (const UnresolvedError& e) {
        return fail(util::ErrorCode::serve_unresolved, e.what());
    } catch (const IoError& e) {
        return fail(error_code(e.kind()), e.what());
    } catch (const util::PreconditionError& e) {
        return fail(util::ErrorCode::precondition, e.what());
    } catch (const std::exception& e) {
        return fail(util::ErrorCode::internal, e.what());
    }
}

void ServeEngine::note_query(double seconds, long freq_points, long waveforms) {
    if (freq_points >= 0) {
        counters_.frequency_queries.fetch_add(1, std::memory_order_relaxed);
        counters_.frequency_points.fetch_add(freq_points, std::memory_order_relaxed);
    }
    if (waveforms >= 0) {
        counters_.transient_queries.fetch_add(1, std::memory_order_relaxed);
        counters_.transient_waveforms.fetch_add(waveforms, std::memory_order_relaxed);
    }
    add_relaxed(counters_.busy_seconds, seconds);
    max_relaxed(counters_.max_query_seconds, seconds);
}

ServeStats ServeEngine::stats() const {
    ServeStats s;
    s.frequency_queries = counters_.frequency_queries.load(std::memory_order_relaxed);
    s.frequency_points = counters_.frequency_points.load(std::memory_order_relaxed);
    s.transient_queries = counters_.transient_queries.load(std::memory_order_relaxed);
    s.transient_waveforms = counters_.transient_waveforms.load(std::memory_order_relaxed);
    s.certificate_queries = counters_.certificate_queries.load(std::memory_order_relaxed);
    s.parametric_queries = counters_.parametric_queries.load(std::memory_order_relaxed);
    s.parametric_fallbacks = counters_.parametric_fallbacks.load(std::memory_order_relaxed);
    s.parametric_blended = counters_.parametric_blended.load(std::memory_order_relaxed);
    s.coalesced_queries = counters_.coalesced_queries.load(std::memory_order_relaxed);
    s.coalesced_batches = counters_.coalesced_batches.load(std::memory_order_relaxed);
    s.deduped_points = counters_.deduped_points.load(std::memory_order_relaxed);
    s.busy_seconds = counters_.busy_seconds.load(std::memory_order_relaxed);
    s.max_query_seconds = counters_.max_query_seconds.load(std::memory_order_relaxed);
    for (const Shard& shard : shards_) {
        std::lock_guard<std::mutex> lock(shard.mutex);
        accumulate(s.solver, shard.evicted_solver);
        for (const auto& [key, st] : shard.states) {
            (void)key;
            accumulate(s.solver, st->evaluator->backend()->stats());
            accumulate(s.solver, st->transient_backend->stats());
        }
    }
    s.registry = registry_->stats();
    return s;
}

}  // namespace atmor::rom
