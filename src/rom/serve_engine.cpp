#include "rom/serve_engine.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace atmor::rom {

namespace {

/// Serving backends get a deeper factorisation cache than the library
/// default: a hot model is probed at many grid shifts and all of them should
/// replay across queries.
constexpr std::size_t kServeCacheSlots = 64;

/// Bound on distinct transient configurations whose warm Newton
/// factorisations a model keeps alive simultaneously.
constexpr std::size_t kMaxWarmStarts = 8;

std::shared_ptr<la::SolverBackend> make_freq_backend(const volterra::Qldae& rom) {
    if (rom.g1_op().is_sparse())
        return std::make_shared<la::SparseLuBackend>(kServeCacheSlots);
    // Dense ROMs (the Galerkin output) take one Schur pass per model; every
    // grid shift afterwards is a triangular backsolve.
    return std::make_shared<la::SchurBackend>(kServeCacheSlots);
}

std::shared_ptr<la::SolverBackend> make_transient_backend(const volterra::Qldae& rom) {
    if (rom.g1_op().is_sparse())
        return std::make_shared<la::SparseLuBackend>(kServeCacheSlots);
    return std::make_shared<la::DenseLuBackend>(kServeCacheSlots);
}

void accumulate(la::SolverStats& acc, const la::SolverStats& s) {
    acc.factorizations += s.factorizations;
    acc.cache_misses += s.cache_misses;
    acc.cache_hits += s.cache_hits;
    acc.solves += s.solves;
    acc.max_factor_dim = std::max(acc.max_factor_dim, s.max_factor_dim);
}

}  // namespace

ServeEngine::ServeEngine(std::shared_ptr<Registry> registry)
    : registry_(std::move(registry)) {
    ATMOR_REQUIRE(registry_ != nullptr, "ServeEngine: null registry");
}

std::shared_ptr<const ReducedModel> ServeEngine::model(const std::string& key,
                                                       const Registry::Builder& build) {
    return state_for(key, build)->model;
}

std::shared_ptr<ServeEngine::ModelState> ServeEngine::state_for(const std::string& key,
                                                                const Registry::Builder& build) {
    // Resolve through the registry OUTSIDE the engine lock: a cold build can
    // take minutes and must not stall queries against other models.
    std::shared_ptr<const ReducedModel> m = registry_->get_or_build(key, build);
    std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<ModelState>& st = states_[key];
    if (!st || st->model != m) {
        st = std::make_shared<ModelState>();
        st->model = m;
        st->evaluator =
            std::make_shared<volterra::TransferEvaluator>(m->rom, make_freq_backend(m->rom));
        st->transient_backend = make_transient_backend(m->rom);
    }
    return st;
}

ErrorCertificate ServeEngine::certificate(const std::string& key,
                                          const Registry::Builder& build) {
    const std::shared_ptr<const ReducedModel> m = state_for(key, build)->model;
    ErrorCertificate cert;
    cert.method = m->provenance.method;
    cert.tol = m->provenance.tol;
    cert.band_min = m->provenance.band_min;
    cert.band_max = m->provenance.band_max;
    cert.estimated_error = m->provenance.estimated_error;
    cert.expansion_points = static_cast<int>(m->provenance.expansion_points.size());
    cert.order = m->order;
    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.certificate_queries;
    return cert;
}

std::vector<la::ZMatrix> ServeEngine::frequency_response(const std::string& key,
                                                         const Registry::Builder& build,
                                                         const std::vector<la::Complex>& grid) {
    const std::shared_ptr<ModelState> st = state_for(key, build);
    util::Timer timer;
    std::vector<la::ZMatrix> out = st->evaluator->output_h1_sweep(grid);
    note_query(timer.seconds(), static_cast<long>(grid.size()), -1);
    return out;
}

std::vector<ode::TransientResult> ServeEngine::transient_batch(
    const std::string& key, const Registry::Builder& build,
    const std::vector<ode::InputFn>& inputs, const ode::TransientOptions& opt) {
    const std::shared_ptr<ModelState> st = state_for(key, build);
    util::Timer timer;
    ode::TransientOptions o = opt;
    o.backend = st->transient_backend;

    // Stamp the warm Newton factorisation once per (model, step size,
    // method); every later batch with that configuration replays it, and
    // clients alternating configurations each keep theirs. Stamped at the
    // zero state/input (the rest state every deviation model starts from),
    // so it is batch-content independent; a waveform that drives Newton off
    // the linearisation refactors privately inside run_implicit.
    ode::WarmStart warm;
    {
        const auto config =
            std::make_tuple(o.t_end, o.dt, static_cast<int>(o.method));
        std::lock_guard<std::mutex> lock(st->warm_mutex);
        auto it = st->warm.find(config);
        if (it == st->warm.end()) {
            if (st->warm.size() >= kMaxWarmStarts) {
                auto victim = st->warm.begin();
                for (auto cand = st->warm.begin(); cand != st->warm.end(); ++cand)
                    if (cand->second.second < victim->second.second) victim = cand;
                st->warm.erase(victim);
            }
            it = st->warm
                     .emplace(config, std::make_pair(ode::make_warm_start(st->model->rom, o),
                                                     std::uint64_t{0}))
                     .first;
        }
        it->second.second = ++st->warm_tick;
        warm = it->second.first;
    }

    std::vector<ode::TransientResult> out = ode::simulate_batch(st->model->rom, inputs, o, warm);
    note_query(timer.seconds(), -1, static_cast<long>(inputs.size()));
    return out;
}

void ServeEngine::note_query(double seconds, long freq_points, long waveforms) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (freq_points >= 0) {
        ++counters_.frequency_queries;
        counters_.frequency_points += freq_points;
    }
    if (waveforms >= 0) {
        ++counters_.transient_queries;
        counters_.transient_waveforms += waveforms;
    }
    counters_.busy_seconds += seconds;
    counters_.max_query_seconds = std::max(counters_.max_query_seconds, seconds);
}

ServeStats ServeEngine::stats() const {
    ServeStats s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s = counters_;
        for (const auto& [key, st] : states_) {
            (void)key;
            accumulate(s.solver, st->evaluator->backend()->stats());
            accumulate(s.solver, st->transient_backend->stats());
        }
    }
    s.registry = registry_->stats();
    return s;
}

}  // namespace atmor::rom
