// The online half of the offline/online split: batched queries against
// registry-resident reduced models, built to be hit from a POOL of request
// handler threads at once.
//
// A query never touches the full-order system. Frequency-response sweeps fan
// out across grid points on the global work-stealing ThreadPool through a
// per-model TransferEvaluator whose resolvent backend caches factorisations
// across queries (a repeated grid is pure cache hits). Transient batches ride
// ode::simulate_batch's warm-factorisation path, with the warm Newton
// Jacobian stamped ONCE per (model, step size, method) and replayed by every
// later batch.
//
// Concurrency model (the serving claims are counters, not eyeballs):
//  * Engine state is HASH-SHARDED: per-model ModelStates live in kShardCount
//    independently locked shards, so queries against different models never
//    contend on engine locks, and a query against one model contends only on
//    that model's warm structures. No query path takes a global engine lock.
//  * Query counters are relaxed atomics; stats() assembles a per-field
//    consistent snapshot (each field is a single atomic load -- never torn,
//    monotonic -- though fields incremented by in-flight queries may lag one
//    another by a query).
//  * Concurrent sweep requests against ONE model COALESCE: a request landing
//    while another request's sweep is in flight (or within the optional
//    collection window) joins that leader's batch. The leader evaluates the
//    UNION of the batch's distinct grid points as one blocked multi-RHS
//    sweep and scatters per-request answers. Every grid point's value is a
//    pure function of its shift, so a coalesced answer is BIT-IDENTICAL to
//    serial per-query execution (pinned by test_serve_concurrent and the
//    bench_serve_load invariant checker), and shared points across requests
//    are evaluated once (deduped_points counts the wins).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "la/solver_backend.hpp"
#include "ode/transient.hpp"
#include "rom/family.hpp"
#include "rom/registry.hpp"
#include "volterra/transfer.hpp"

namespace atmor::rom {

/// The accuracy contract a model was built under, surfaced per query: what
/// band the a-posteriori estimate covers, the tolerance targeted, and the
/// certified estimate itself (all from Provenance; zeros mean the model was
/// built by a fixed-order front-end and carries no certificate).
struct ErrorCertificate {
    std::string method;           ///< "adaptive" | "atmor" | "linear" | "norm"
    double tol = 0.0;             ///< build-time accuracy target (0 = none)
    double band_min = 0.0;        ///< certified band [rad/s]
    double band_max = 0.0;
    double estimated_error = 0.0; ///< a-posteriori max relative band error
    int expansion_points = 0;
    int order = 0;
    /// True when the model carries a build-time error estimate at all.
    [[nodiscard]] bool certified() const { return estimated_error > 0.0; }
};

/// How a parametric query should be answered and what the rejection path is.
struct ParametricOptions {
    /// Certification tolerance; 0 uses the family's own tol.
    double tol = 0.0;
    /// Blend the outputs of the cell's best AND runner-up member (inverse-
    /// distance weights) when both certify; the certificate is then the max
    /// of the two cross errors (a convex combination of two tol-accurate
    /// responses stays tol-accurate).
    bool blend = false;
    /// The rejection path: build a dedicated model for the query point when
    /// no member certifies it (resolved through the registry, so repeated
    /// uncovered queries at one point build once). Without it an uncovered
    /// query is a typed PreconditionError.
    std::function<ReducedModel(const pmor::Point&)> fallback_build;
    /// Registry key for the fallback model at a point. Defaults to a key
    /// composed from the family id, the point and the EFFECTIVE tolerance,
    /// so queries demanding different accuracies never share a cached
    /// fallback. Supply pmor::member_key(design, adaptive, p) here to make
    /// on-demand builds coalesce with family-member artifacts of the same
    /// accuracy.
    std::function<std::string(const pmor::Point&)> fallback_key;
};

struct ParametricAnswer {
    /// Output-mapped H1 over the query grid (blended when `blended_with`
    /// is set).
    std::vector<la::ZMatrix> response;
    /// The per-query accuracy contract: for member-served answers the
    /// estimated_error is the OFFLINE-CERTIFIED cross error of the covering
    /// training cell (>= the member's own build certificate); for fallback
    /// answers it is the freshly built model's provenance certificate.
    ErrorCertificate certificate;
    int member = -1;        ///< serving member index (-1 on fallback)
    int blended_with = -1;  ///< runner-up member blended in (-1: none)
    double blend_weight = 1.0;  ///< weight of `member` in the blend
    bool fallback = false;  ///< true when no member certified the query
};

struct ServeStats {
    long frequency_queries = 0;   ///< sweep queries answered
    long frequency_points = 0;    ///< grid points requested across them
    long transient_queries = 0;   ///< batch queries answered
    long transient_waveforms = 0; ///< waveforms integrated across them
    long certificate_queries = 0; ///< error-bound lookups answered
    long parametric_queries = 0;  ///< serve_parametric calls answered
    long parametric_fallbacks = 0; ///< routed to the on-demand build path
    long parametric_blended = 0;  ///< answered by a two-member blend
    // -- Cross-request coalescing. Every request is still accounted above
    // (frequency_points counts REQUESTED points), so coalescing never loses
    // or double-counts per-request stats; these measure how much work the
    // merge avoided.
    long coalesced_queries = 0;   ///< sweeps answered by joining another request's batch
    long coalesced_batches = 0;   ///< merged multi-request batches evaluated
    long deduped_points = 0;      ///< requested points served from a batch-mate's
                                  ///< identical point instead of a fresh solve
    double busy_seconds = 0.0;    ///< summed per-query wall time
    double max_query_seconds = 0.0;
    RegistryStats registry;       ///< model-resolution counters
    /// Aggregated over every per-model serving backend (frequency +
    /// transient). max_factor_dim is the load-bearing field: it must stay at
    /// reduced order while serving.
    la::SolverStats solver;
};

/// Engine-wide serving knobs.
struct ServeOptions {
    /// Extra collection window a sweep leader waits before evaluating its
    /// batch, in seconds. 0 (the default) coalesces only requests that land
    /// while another sweep on the same model is ALREADY in flight -- no
    /// added latency when traffic is light. A small positive window trades
    /// uncontended-query latency for larger merged batches at saturation.
    double coalesce_window_seconds = 0.0;
    /// Bound on live per-model serving states across all shards: keyed
    /// models, family members and per-tolerance fallback builds all pin a
    /// model copy plus factorization caches, and parametric sweep traffic
    /// can mint distinct keys without limit. Evicted least-recently-used,
    /// per shard.
    std::size_t max_model_states = 128;
};

class ServeEngine {
public:
    explicit ServeEngine(std::shared_ptr<Registry> registry, ServeOptions opt = {});

    /// Resolve a model through the registry (memory / disk / single-flight
    /// build). The returned handle stays valid independent of eviction.
    [[nodiscard]] std::shared_ptr<const ReducedModel> model(const std::string& key,
                                                            const Registry::Builder& build);

    /// Batched frequency response: the output-mapped H1(grid[p]) of the
    /// reduced model, in grid order (exactly TransferEvaluator::
    /// output_h1_sweep of the ROM -- coalescing with concurrent requests
    /// never changes the bits). Fans out across grid points.
    [[nodiscard]] std::vector<la::ZMatrix> frequency_response(
        const std::string& key, const Registry::Builder& build,
        const std::vector<la::Complex>& grid);

    /// The certified error bound for the model behind `key` (resolving it
    /// like any other query): clients pair this with any
    /// frequency_response / transient_batch answer to know the accuracy
    /// contract the reduction was built under.
    [[nodiscard]] ErrorCertificate certificate(const std::string& key,
                                               const Registry::Builder& build);

    /// Batched transient queries: one waveform per entry, in input order,
    /// all sharing the model's warm Newton factorisation (stamped on first
    /// use for the given step size/method, replayed afterwards). An empty
    /// batch is a typed PreconditionError, never a silent no-op.
    [[nodiscard]] std::vector<ode::TransientResult> transient_batch(
        const std::string& key, const Registry::Builder& build,
        const std::vector<ode::InputFn>& inputs, const ode::TransientOptions& opt);

    /// Parametric serving against a rom::Family: locate the query's training
    /// cell, serve the certifying member's frequency response (optionally
    /// blended with the runner-up) with the cell's offline-certified error
    /// as the per-query certificate, or route to the fallback build when no
    /// member certifies under tolerance. Member evaluators are cached like
    /// keyed models, so repeated queries replay factorisations; member
    /// sweeps coalesce with concurrent requests against the same member.
    [[nodiscard]] ParametricAnswer serve_parametric(const Family& family,
                                                    const pmor::Point& coords,
                                                    const std::vector<la::Complex>& grid,
                                                    const ParametricOptions& opt = {});

    /// Parametric serving straight off a (possibly mmap-backed) family
    /// artifact: identical routing, certificates and answers as the Family
    /// overload -- both run the same core -- but members materialize only
    /// when a query actually routes to them, so serving one point against a
    /// lazy artifact touches O(1) members, not the whole file.
    [[nodiscard]] ParametricAnswer serve_parametric(const FamilyArtifact& family,
                                                    const pmor::Point& coords,
                                                    const std::vector<la::Complex>& grid,
                                                    const ParametricOptions& opt = {});

    /// Per-field consistent snapshot: every counter is one relaxed atomic
    /// load (never torn, monotonic across calls); the solver block
    /// aggregates each shard's live and evicted backend counters under that
    /// shard's lock only.
    [[nodiscard]] ServeStats stats() const;

    [[nodiscard]] const std::shared_ptr<Registry>& registry() const { return registry_; }
    [[nodiscard]] const ServeOptions& options() const { return opt_; }

private:
    /// A sweep request parked on another request's batch: the leader
    /// evaluates its grid and fulfills the promise (value or the batch's
    /// exception). The grid pointer stays valid because the owner blocks on
    /// the future until fulfilled.
    struct SweepWaiter {
        const std::vector<la::Complex>* grid = nullptr;
        std::promise<std::vector<la::ZMatrix>> promise;
    };

    /// Per-model batching stage for sweep requests. leader_active marks a
    /// request currently collecting/evaluating; later arrivals enqueue on
    /// pending and are served by the leader's next round. The mutex guards
    /// only the queue handoff -- never a solve.
    struct SweepCoalescer {
        std::mutex mutex;
        bool leader_active = false;  ///< guarded by mutex
        std::vector<std::unique_ptr<SweepWaiter>> pending;  ///< guarded by mutex
    };

    /// Per-model serving state: the evaluator + backends live as long as the
    /// engine so factorisation caches and warm starts persist across queries
    /// (even past registry eviction).
    struct ModelState {
        std::shared_ptr<const ReducedModel> model;
        std::shared_ptr<volterra::TransferEvaluator> evaluator;
        std::shared_ptr<la::SolverBackend> transient_backend;
        SweepCoalescer coalescer;  ///< batches concurrent sweeps on this model
        /// LRU tick for the shard bound: keyed, family-member and fallback
        /// states all pin a model copy plus factorization caches, so the
        /// engine cannot keep one per distinct key forever under parametric
        /// sweep traffic.
        std::uint64_t last_used = 0;
        std::mutex warm_mutex;  ///< guards the warm-start map below
        /// One warm Newton factorisation per transient configuration, so
        /// clients alternating step sizes/methods each keep their replay.
        /// Bounded (kMaxWarmStarts in the .cpp) with least-recently-USED
        /// eviction via the tick, so a hot configuration is never the
        /// victim of colder ones.
        std::map<std::tuple<double, double, int>, std::pair<ode::WarmStart, std::uint64_t>>
            warm;
        std::uint64_t warm_tick = 0;
    };

    /// One lock + state map per hash shard; queries on models in different
    /// shards share NO engine lock. evicted_solver accumulates the backend
    /// counters of evicted/replaced states so stats() stays monotonic.
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::string, std::shared_ptr<ModelState>> states;
        la::SolverStats evicted_solver;  ///< guarded by mutex
    };

    /// Relaxed-atomic query counters: every increment is lock-free, so the
    /// sharded hot path carries no counter lock traffic. Doubles are updated
    /// by CAS loops (C++17 atomics have no floating fetch_add).
    struct Counters {
        std::atomic<long> frequency_queries{0};
        std::atomic<long> frequency_points{0};
        std::atomic<long> transient_queries{0};
        std::atomic<long> transient_waveforms{0};
        std::atomic<long> certificate_queries{0};
        std::atomic<long> parametric_queries{0};
        std::atomic<long> parametric_fallbacks{0};
        std::atomic<long> parametric_blended{0};
        std::atomic<long> coalesced_queries{0};
        std::atomic<long> coalesced_batches{0};
        std::atomic<long> deduped_points{0};
        std::atomic<double> busy_seconds{0.0};
        std::atomic<double> max_query_seconds{0.0};
    };

    static constexpr std::size_t kShardCount = 16;  // power of two (hash mask)

    [[nodiscard]] Shard& shard_for(const std::string& key);

    /// Evaluator + backend wiring for a resolved model (shared by the keyed
    /// and family-member paths so the two can never drift); called OUTSIDE
    /// any shard lock -- construction copies the ROM and sizes caches.
    [[nodiscard]] static std::shared_ptr<ModelState> make_state(
        std::shared_ptr<const ReducedModel> model);

    /// The state for `key`, (re)initialised when the registry hands back a
    /// different model instance than last time. Registry resolution (and any
    /// cold build behind it) runs OUTSIDE every engine lock, so a slow build
    /// never blocks warm serves -- not even of models in the same shard.
    [[nodiscard]] std::shared_ptr<ModelState> state_for(const std::string& key,
                                                        const Registry::Builder& build);

    /// The coalescing sweep path every output_h1 sweep goes through: become
    /// the model's batch leader (evaluating own + merged grids until the
    /// pending queue drains) or park on the active leader's batch.
    [[nodiscard]] std::vector<la::ZMatrix> coalesced_sweep(ModelState& st,
                                                           const std::vector<la::Complex>& grid);

    /// Accessor bundle the parametric core serves through, so the eager
    /// Family and lazy FamilyArtifact overloads share one implementation
    /// (and can never drift): header data by reference, members through a
    /// materializing callback the lazy path only invokes for the member(s)
    /// a query actually routes to.
    struct FamilyView;
    [[nodiscard]] ParametricAnswer serve_parametric_impl(const FamilyView& view,
                                                         const pmor::Point& coords,
                                                         const std::vector<la::Complex>& grid,
                                                         const ParametricOptions& opt);

    /// Serving state for a family member (already-built artifact, no
    /// registry resolution); keyed by family id + member index + basis hash
    /// so a reloaded family with identical members reuses the caches.
    [[nodiscard]] std::shared_ptr<ModelState> member_state(const std::string& family_id,
                                                           int member,
                                                           const FamilyMember& fm);

    void note_query(double seconds, long freq_points, long waveforms);

    /// Evict least-recently-used states past the shard's share of
    /// max_model_states (never `keep_key`); their solver counters fold into
    /// the shard's evicted_solver so stats() stays monotonic. Caller holds
    /// the shard mutex. Outstanding ModelState handles stay valid; a later
    /// query for an evicted key re-resolves and rebuilds.
    void bound_shard_locked(Shard& shard, const std::string& keep_key);

    std::shared_ptr<Registry> registry_;
    ServeOptions opt_;
    std::size_t shard_capacity_;  ///< per-shard live-state bound
    std::array<Shard, kShardCount> shards_;
    std::atomic<std::uint64_t> state_tick_{0};
    Counters counters_;
};

}  // namespace atmor::rom
