// The online half of the offline/online split: batched queries against
// registry-resident reduced models.
//
// A query never touches the full-order system. Frequency-response sweeps fan
// out across grid points on the global work-stealing ThreadPool through a
// per-model TransferEvaluator whose resolvent backend caches factorisations
// across queries (a repeated grid is pure cache hits). Transient batches ride
// ode::simulate_batch's warm-factorisation path, with the warm Newton
// Jacobian stamped ONCE per (model, step size, method) and replayed by every
// later batch. Per-query latency and the underlying registry / solver
// counters are surfaced through stats(), so "a warm engine does zero
// reductions and zero full-order factorisations" is an assertable property
// (max_factor_dim stays at reduced order), not a claim.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "la/solver_backend.hpp"
#include "ode/transient.hpp"
#include "rom/registry.hpp"
#include "volterra/transfer.hpp"

namespace atmor::rom {

/// The accuracy contract a model was built under, surfaced per query: what
/// band the a-posteriori estimate covers, the tolerance targeted, and the
/// certified estimate itself (all from Provenance; zeros mean the model was
/// built by a fixed-order front-end and carries no certificate).
struct ErrorCertificate {
    std::string method;           ///< "adaptive" | "atmor" | "linear" | "norm"
    double tol = 0.0;             ///< build-time accuracy target (0 = none)
    double band_min = 0.0;        ///< certified band [rad/s]
    double band_max = 0.0;
    double estimated_error = 0.0; ///< a-posteriori max relative band error
    int expansion_points = 0;
    int order = 0;
    /// True when the model carries a build-time error estimate at all.
    [[nodiscard]] bool certified() const { return estimated_error > 0.0; }
};

struct ServeStats {
    long frequency_queries = 0;   ///< sweep queries answered
    long frequency_points = 0;    ///< grid points evaluated across them
    long transient_queries = 0;   ///< batch queries answered
    long transient_waveforms = 0; ///< waveforms integrated across them
    long certificate_queries = 0; ///< error-bound lookups answered
    double busy_seconds = 0.0;    ///< summed per-query wall time
    double max_query_seconds = 0.0;
    RegistryStats registry;       ///< model-resolution counters
    /// Aggregated over every per-model serving backend (frequency +
    /// transient). max_factor_dim is the load-bearing field: it must stay at
    /// reduced order while serving.
    la::SolverStats solver;
};

class ServeEngine {
public:
    explicit ServeEngine(std::shared_ptr<Registry> registry);

    /// Resolve a model through the registry (memory / disk / single-flight
    /// build). The returned handle stays valid independent of eviction.
    [[nodiscard]] std::shared_ptr<const ReducedModel> model(const std::string& key,
                                                            const Registry::Builder& build);

    /// Batched frequency response: the output-mapped H1(grid[p]) of the
    /// reduced model, in grid order (exactly TransferEvaluator::
    /// output_h1_sweep of the ROM). Fans out across grid points.
    [[nodiscard]] std::vector<la::ZMatrix> frequency_response(
        const std::string& key, const Registry::Builder& build,
        const std::vector<la::Complex>& grid);

    /// The certified error bound for the model behind `key` (resolving it
    /// like any other query): clients pair this with any
    /// frequency_response / transient_batch answer to know the accuracy
    /// contract the reduction was built under.
    [[nodiscard]] ErrorCertificate certificate(const std::string& key,
                                               const Registry::Builder& build);

    /// Batched transient queries: one waveform per entry, in input order,
    /// all sharing the model's warm Newton factorisation (stamped on first
    /// use for the given step size/method, replayed afterwards).
    [[nodiscard]] std::vector<ode::TransientResult> transient_batch(
        const std::string& key, const Registry::Builder& build,
        const std::vector<ode::InputFn>& inputs, const ode::TransientOptions& opt);

    [[nodiscard]] ServeStats stats() const;

    [[nodiscard]] const std::shared_ptr<Registry>& registry() const { return registry_; }

private:
    /// Per-model serving state: the evaluator + backends live as long as the
    /// engine so factorisation caches and warm starts persist across queries
    /// (even past registry eviction).
    struct ModelState {
        std::shared_ptr<const ReducedModel> model;
        std::shared_ptr<volterra::TransferEvaluator> evaluator;
        std::shared_ptr<la::SolverBackend> transient_backend;
        std::mutex warm_mutex;  ///< guards the warm-start map below
        /// One warm Newton factorisation per transient configuration, so
        /// clients alternating step sizes/methods each keep their replay.
        /// Bounded (kMaxWarmStarts in the .cpp) with least-recently-USED
        /// eviction via the tick, so a hot configuration is never the
        /// victim of colder ones.
        std::map<std::tuple<double, double, int>, std::pair<ode::WarmStart, std::uint64_t>>
            warm;
        std::uint64_t warm_tick = 0;
    };

    /// The state for `key`, (re)initialised when the registry hands back a
    /// different model instance than last time.
    [[nodiscard]] std::shared_ptr<ModelState> state_for(const std::string& key,
                                                        const Registry::Builder& build);

    void note_query(double seconds, long freq_points, long waveforms);

    std::shared_ptr<Registry> registry_;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, std::shared_ptr<ModelState>> states_;
    ServeStats counters_;  // latency/query fields; registry/solver filled on read
};

}  // namespace atmor::rom
