// The online half of the offline/online split: batched queries against
// registry-resident reduced models, built to be hit from a POOL of request
// handler threads at once.
//
// A query never touches the full-order system. Frequency-response sweeps fan
// out across grid points on the global work-stealing ThreadPool through a
// per-model TransferEvaluator whose resolvent backend caches factorisations
// across queries (a repeated grid is pure cache hits). Transient batches ride
// ode::simulate_batch's warm-factorisation path, with the warm Newton
// Jacobian stamped ONCE per (model, step size, method) and replayed by every
// later batch.
//
// Concurrency model (the serving claims are counters, not eyeballs):
//  * Engine state is HASH-SHARDED: per-model ModelStates live in kShardCount
//    independently locked shards, so queries against different models never
//    contend on engine locks, and a query against one model contends only on
//    that model's warm structures. No query path takes a global engine lock.
//  * Query counters are relaxed atomics; stats() assembles a per-field
//    consistent snapshot (each field is a single atomic load -- never torn,
//    monotonic -- though fields incremented by in-flight queries may lag one
//    another by a query).
//  * Concurrent sweep requests against ONE model COALESCE: a request landing
//    while another request's sweep is in flight (or within the optional
//    collection window) joins that leader's batch. The leader evaluates the
//    UNION of the batch's distinct grid points as one blocked multi-RHS
//    sweep and scatters per-request answers. Every grid point's value is a
//    pure function of its shift, so a coalesced answer is BIT-IDENTICAL to
//    serial per-query execution (pinned by test_serve_concurrent and the
//    bench_serve_load invariant checker), and shared points across requests
//    are evaluated once (deduped_points counts the wins).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "la/solver_backend.hpp"
#include "ode/transient.hpp"
#include "rom/family.hpp"
#include "rom/registry.hpp"
#include "rom/serve_api.hpp"
#include "volterra/transfer.hpp"

namespace atmor::rom {

struct ServeStats {
    long frequency_queries = 0;   ///< sweep queries answered
    long frequency_points = 0;    ///< grid points requested across them
    long transient_queries = 0;   ///< batch queries answered
    long transient_waveforms = 0; ///< waveforms integrated across them
    long certificate_queries = 0; ///< error-bound lookups answered
    long parametric_queries = 0;  ///< serve_parametric calls answered
    long parametric_fallbacks = 0; ///< routed to the on-demand build path
    long parametric_blended = 0;  ///< answered by a two-member blend
    // -- Cross-request coalescing. Every request is still accounted above
    // (frequency_points counts REQUESTED points), so coalescing never loses
    // or double-counts per-request stats; these measure how much work the
    // merge avoided.
    long coalesced_queries = 0;   ///< sweeps answered by joining another request's batch
    long coalesced_batches = 0;   ///< merged multi-request batches evaluated
    long deduped_points = 0;      ///< requested points served from a batch-mate's
                                  ///< identical point instead of a fresh solve
    double busy_seconds = 0.0;    ///< summed per-query wall time
    double max_query_seconds = 0.0;
    RegistryStats registry;       ///< model-resolution counters
    /// Aggregated over every per-model serving backend (frequency +
    /// transient). max_factor_dim is the load-bearing field: it must stay at
    /// reduced order while serving.
    la::SolverStats solver;
};

/// Engine-wide serving knobs.
struct ServeOptions {
    /// Extra collection window a sweep leader waits before evaluating its
    /// batch, in seconds. 0 (the default) coalesces only requests that land
    /// while another sweep on the same model is ALREADY in flight -- no
    /// added latency when traffic is light. A small positive window trades
    /// uncontended-query latency for larger merged batches at saturation.
    double coalesce_window_seconds = 0.0;
    /// Bound on live per-model serving states across all shards: keyed
    /// models, family members and per-tolerance fallback builds all pin a
    /// model copy plus factorization caches, and parametric sweep traffic
    /// can mint distinct keys without limit. Evicted least-recently-used,
    /// per shard.
    std::size_t max_model_states = 128;
};

class ServeEngine {
public:
    /// Host-side realization of BuildSpec recipes (rom/serve_api.hpp): the
    /// catalog of builds the engine is willing to run for requests that name
    /// a spec instead of a key. Unset means every build_spec ModelRef is an
    /// UnresolvedError.
    using SpecResolver = std::function<ReducedModel(const BuildSpec&)>;

    explicit ServeEngine(std::shared_ptr<Registry> registry, ServeOptions opt = {});

    /// THE serving entrypoint: dispatch a typed ServeRequest (the same type
    /// that crosses the wire) and return a ServeResponse that is NEVER a
    /// thrown exception -- failures come back as the typed error taxonomy of
    /// util/error_codes.hpp (UnresolvedError -> serve_unresolved, IoError by
    /// kind, PreconditionError -> precondition, anything else -> internal),
    /// so the daemon and in-process callers observe identical outcomes. The
    /// four legacy entrypoints below are thin wrappers over the same
    /// dispatch (they rethrow instead of wrapping), so their pins hold the
    /// redesign bit-identical.
    [[nodiscard]] ServeResponse serve(const ServeRequest& req);

    /// Register the BuildSpec catalog. Thread-safe; replaces any previous
    /// resolver (requests in flight keep the one they started with).
    void set_spec_resolver(SpecResolver resolver);

    /// Host a family for wire parametric queries that name it by family_id:
    /// the hosted catalog is probed before the registry's family-artifact
    /// tier. `defaults` supplies the server-side fallback hooks (and default
    /// tolerance) applied to wire requests, which cannot carry closures.
    void host_family(Family family, ParametricOptions defaults = {});
    void host_family(FamilyArtifact family, ParametricOptions defaults = {});

    /// Resolve a model through the registry (memory / disk / single-flight
    /// build). The returned handle stays valid independent of eviction.
    [[nodiscard]] std::shared_ptr<const ReducedModel> model(const std::string& key,
                                                            const Registry::Builder& build);

    /// Batched frequency response: the output-mapped H1(grid[p]) of the
    /// reduced model, in grid order (exactly TransferEvaluator::
    /// output_h1_sweep of the ROM -- coalescing with concurrent requests
    /// never changes the bits). Fans out across grid points.
    [[nodiscard]] std::vector<la::ZMatrix> frequency_response(
        const std::string& key, const Registry::Builder& build,
        const std::vector<la::Complex>& grid);

    /// The certified error bound for the model behind `key` (resolving it
    /// like any other query): clients pair this with any
    /// frequency_response / transient_batch answer to know the accuracy
    /// contract the reduction was built under.
    [[nodiscard]] ErrorCertificate certificate(const std::string& key,
                                               const Registry::Builder& build);

    /// Batched transient queries: one waveform per entry, in input order,
    /// all sharing the model's warm Newton factorisation (stamped on first
    /// use for the given step size/method, replayed afterwards). An empty
    /// batch is a typed PreconditionError, never a silent no-op.
    [[nodiscard]] std::vector<ode::TransientResult> transient_batch(
        const std::string& key, const Registry::Builder& build,
        const std::vector<ode::InputFn>& inputs, const ode::TransientOptions& opt);

    /// Parametric serving against a rom::Family: locate the query's training
    /// cell, serve the certifying member's frequency response (optionally
    /// blended with the runner-up) with the cell's offline-certified error
    /// as the per-query certificate, or route to the fallback build when no
    /// member certifies under tolerance. Member evaluators are cached like
    /// keyed models, so repeated queries replay factorisations; member
    /// sweeps coalesce with concurrent requests against the same member.
    [[nodiscard]] ParametricAnswer serve_parametric(const Family& family,
                                                    const pmor::Point& coords,
                                                    const std::vector<la::Complex>& grid,
                                                    const ParametricOptions& opt = {});

    /// Parametric serving straight off a (possibly mmap-backed) family
    /// artifact: identical routing, certificates and answers as the Family
    /// overload -- both run the same core -- but members materialize only
    /// when a query actually routes to them, so serving one point against a
    /// lazy artifact touches O(1) members, not the whole file.
    [[nodiscard]] ParametricAnswer serve_parametric(const FamilyArtifact& family,
                                                    const pmor::Point& coords,
                                                    const std::vector<la::Complex>& grid,
                                                    const ParametricOptions& opt = {});

    /// Batched parametric serving (the Monte-Carlo process-variation shape):
    /// every point of `coords` against one family in one call, resolving the
    /// family once and routing each point through the shared coverage table.
    /// Answers land in ServeResponse batch form -- concatenated per-point
    /// sweeps plus the batch_member/batch_error/batch_fallback parallel
    /// arrays, certificate = the worst point's. Per-point routing is
    /// IDENTICAL to looping serve_parametric (pinned by test_scenarios).
    [[nodiscard]] ServeResponse serve_parametric_batch(const Family& family,
                                                       const std::vector<pmor::Point>& coords,
                                                       const std::vector<la::Complex>& grid,
                                                       const ParametricOptions& opt = {});
    [[nodiscard]] ServeResponse serve_parametric_batch(const FamilyArtifact& family,
                                                       const std::vector<pmor::Point>& coords,
                                                       const std::vector<la::Complex>& grid,
                                                       const ParametricOptions& opt = {});

    /// Per-field consistent snapshot: every counter is one relaxed atomic
    /// load (never torn, monotonic across calls); the solver block
    /// aggregates each shard's live and evicted backend counters under that
    /// shard's lock only.
    [[nodiscard]] ServeStats stats() const;

    [[nodiscard]] const std::shared_ptr<Registry>& registry() const { return registry_; }
    [[nodiscard]] const ServeOptions& options() const { return opt_; }

private:
    /// A sweep request parked on another request's batch: the leader
    /// evaluates its grid and fulfills the promise (value or the batch's
    /// exception). The grid pointer stays valid because the owner blocks on
    /// the future until fulfilled.
    struct SweepWaiter {
        const std::vector<la::Complex>* grid = nullptr;
        std::promise<std::vector<la::ZMatrix>> promise;
    };

    /// Per-model batching stage for sweep requests. leader_active marks a
    /// request currently collecting/evaluating; later arrivals enqueue on
    /// pending and are served by the leader's next round. The mutex guards
    /// only the queue handoff -- never a solve.
    struct SweepCoalescer {
        std::mutex mutex;
        bool leader_active = false;  ///< guarded by mutex
        std::vector<std::unique_ptr<SweepWaiter>> pending;  ///< guarded by mutex
    };

    /// Per-model serving state: the evaluator + backends live as long as the
    /// engine so factorisation caches and warm starts persist across queries
    /// (even past registry eviction).
    struct ModelState {
        std::shared_ptr<const ReducedModel> model;
        std::shared_ptr<volterra::TransferEvaluator> evaluator;
        std::shared_ptr<la::SolverBackend> transient_backend;
        SweepCoalescer coalescer;  ///< batches concurrent sweeps on this model
        /// LRU tick for the shard bound: keyed, family-member and fallback
        /// states all pin a model copy plus factorization caches, so the
        /// engine cannot keep one per distinct key forever under parametric
        /// sweep traffic.
        std::uint64_t last_used = 0;
        std::mutex warm_mutex;  ///< guards the warm-start map below
        /// One warm Newton factorisation per transient configuration, so
        /// clients alternating step sizes/methods each keep their replay.
        /// Bounded (kMaxWarmStarts in the .cpp) with least-recently-USED
        /// eviction via the tick, so a hot configuration is never the
        /// victim of colder ones.
        std::map<std::tuple<double, double, int>, std::pair<ode::WarmStart, std::uint64_t>>
            warm;
        std::uint64_t warm_tick = 0;
    };

    /// One lock + state map per hash shard; queries on models in different
    /// shards share NO engine lock. evicted_solver accumulates the backend
    /// counters of evicted/replaced states so stats() stays monotonic.
    struct Shard {
        mutable std::mutex mutex;
        std::unordered_map<std::string, std::shared_ptr<ModelState>> states;
        la::SolverStats evicted_solver;  ///< guarded by mutex
    };

    /// Relaxed-atomic query counters: every increment is lock-free, so the
    /// sharded hot path carries no counter lock traffic. Doubles are updated
    /// by CAS loops (C++17 atomics have no floating fetch_add).
    struct Counters {
        std::atomic<long> frequency_queries{0};
        std::atomic<long> frequency_points{0};
        std::atomic<long> transient_queries{0};
        std::atomic<long> transient_waveforms{0};
        std::atomic<long> certificate_queries{0};
        std::atomic<long> parametric_queries{0};
        std::atomic<long> parametric_fallbacks{0};
        std::atomic<long> parametric_blended{0};
        std::atomic<long> coalesced_queries{0};
        std::atomic<long> coalesced_batches{0};
        std::atomic<long> deduped_points{0};
        std::atomic<double> busy_seconds{0.0};
        std::atomic<double> max_query_seconds{0.0};
    };

    static constexpr std::size_t kShardCount = 16;  // power of two (hash mask)

    [[nodiscard]] Shard& shard_for(const std::string& key);

    /// Evaluator + backend wiring for a resolved model (shared by the keyed
    /// and family-member paths so the two can never drift); called OUTSIDE
    /// any shard lock -- construction copies the ROM and sizes caches.
    [[nodiscard]] static std::shared_ptr<ModelState> make_state(
        std::shared_ptr<const ReducedModel> model);

    /// The state for `key`, (re)initialised when the registry hands back a
    /// different model instance than last time. Registry resolution (and any
    /// cold build behind it) runs OUTSIDE every engine lock, so a slow build
    /// never blocks warm serves -- not even of models in the same shard.
    [[nodiscard]] std::shared_ptr<ModelState> state_for(const std::string& key,
                                                        const Registry::Builder& build);

    /// THE model-resolution path: every entrypoint (serve() and all legacy
    /// wrappers) funnels its ModelRef through here, replacing the four
    /// per-entrypoint (key, Builder) threads. registry_key refs resolve
    /// through state_for (with the in-process builder when the ref carries
    /// one, else a probe that throws UnresolvedError on a full miss);
    /// artifact_path refs load-and-cache under "artifact:<path>"; build_spec
    /// refs run the registered SpecResolver under the spec's stable key.
    [[nodiscard]] std::shared_ptr<ModelState> resolve(const ModelRef& ref);

    /// Throwing core behind serve(): dispatch on the request kind, fill the
    /// response payload, and keep the per-kind counter accounting EXACTLY
    /// where the legacy entrypoints had it (the wrappers call this, so no
    /// query is ever double-counted).
    [[nodiscard]] ServeResponse dispatch(const ServeRequest& req);

    /// The transient serving core (warm-start lookup + batch run + counter
    /// accounting) against an already-resolved state.
    [[nodiscard]] std::vector<ode::TransientResult> run_transient_batch(
        ModelState& st, const std::vector<ode::InputFn>& inputs,
        const ode::TransientOptions& opt);

    /// The coalescing sweep path every output_h1 sweep goes through: become
    /// the model's batch leader (evaluating own + merged grids until the
    /// pending queue drains) or park on the active leader's batch.
    [[nodiscard]] std::vector<la::ZMatrix> coalesced_sweep(ModelState& st,
                                                           const std::vector<la::Complex>& grid);

    /// Accessor bundle the parametric core serves through, so the eager
    /// Family and lazy FamilyArtifact overloads share one implementation
    /// (and can never drift): header data by reference, members through a
    /// materializing callback the lazy path only invokes for the member(s)
    /// a query actually routes to.
    struct FamilyView;
    [[nodiscard]] ParametricAnswer serve_parametric_impl(const FamilyView& view,
                                                         const pmor::Point& coords,
                                                         const std::vector<la::Complex>& grid,
                                                         const ParametricOptions& opt);

    /// Resolve the three request forms (in-process Family pointer, in-process
    /// artifact pointer, wire family_id through the hosted catalog) to a
    /// FamilyView and run `fn` against it. The wire form folds the host's
    /// registered defaults into `eff` and strips the fallback when the
    /// request disallowed it; the in-process forms use `eff` as passed.
    /// Shared by the single-point and batch dispatch cases so routing can
    /// never drift between them.
    void with_family_view(const Family* family, const FamilyArtifact* artifact,
                          const std::string& family_id, bool allow_fallback,
                          ParametricOptions& eff,
                          const std::function<void(const FamilyView&)>& fn);

    /// Serving state for a family member (already-built artifact, no
    /// registry resolution); keyed by family id + member index + basis hash
    /// so a reloaded family with identical members reuses the caches.
    [[nodiscard]] std::shared_ptr<ModelState> member_state(const std::string& family_id,
                                                           int member,
                                                           const FamilyMember& fm);

    void note_query(double seconds, long freq_points, long waveforms);

    /// Evict least-recently-used states past the shard's share of
    /// max_model_states (never `keep_key`); their solver counters fold into
    /// the shard's evicted_solver so stats() stays monotonic. Caller holds
    /// the shard mutex. Outstanding ModelState handles stay valid; a later
    /// query for an evicted key re-resolves and rebuilds.
    void bound_shard_locked(Shard& shard, const std::string& keep_key);

    /// A family in the hosted catalog: the artifact (possibly an eager
    /// from_family wrap) plus the server-side ParametricOptions applied to
    /// wire queries against it.
    struct HostedFamily {
        FamilyArtifact artifact;
        ParametricOptions defaults;
    };

    /// The hosted family for `family_id`: catalog first, then the registry's
    /// family-artifact tier (cached in the catalog so the mmap happens
    /// once). Throws UnresolvedError when neither has it.
    [[nodiscard]] HostedFamily hosted_family(const std::string& family_id);

    std::shared_ptr<Registry> registry_;
    ServeOptions opt_;
    std::size_t shard_capacity_;  ///< per-shard live-state bound
    std::array<Shard, kShardCount> shards_;
    std::atomic<std::uint64_t> state_tick_{0};
    Counters counters_;

    mutable std::mutex catalog_mutex_;  ///< guards the two members below
    std::unordered_map<std::string, HostedFamily> hosted_;
    SpecResolver spec_resolver_;
};

}  // namespace atmor::rom
