// The ReducedModel artifact: the offline/online seam of the pipeline.
//
// The paper's value proposition is an expensive ONE-TIME reduction buying a
// tiny QLDAE that is cheap to evaluate ever after (Table 1: minutes of moment
// generation vs ~100x faster transients). ReducedModel is that purchase made
// first-class: the reduced system plus the projection basis and enough
// provenance to know exactly what was bought -- which circuit, which
// expansion points, which moment counts, and a hash of the basis that built
// it. rom::io serialises it, rom::Registry caches it, rom::ServeEngine
// answers queries against it; core::MorResult is an alias of it, so every
// reduce_* front-end emits a ready-to-save artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "la/matrix.hpp"
#include "volterra/qldae.hpp"

namespace atmor::rom {

/// Per-expansion-point moment counts (k1 moments of H1, k2 of A2(H2), k3 of
/// A3(H3)). The adaptive front-end trims these per point; uniform reductions
/// leave the per-point list empty and use the scalar k1/k2/k3 below.
struct PointOrder {
    int k1 = 0;
    int k2 = 0;
    int k3 = 0;
};

inline bool operator==(const PointOrder& a, const PointOrder& b) {
    return a.k1 == b.k1 && a.k2 == b.k2 && a.k3 == b.k3;
}

/// Where a reduced model came from: the reproducibility record the paper's
/// tables report, and the identity the registry keys on.
struct Provenance {
    std::string source;  ///< stable source-circuit key (circuits::*Options::key())
    std::string method;  ///< "atmor" | "linear" | "norm" | "adaptive"
    std::vector<la::Complex> expansion_points;
    int k1 = 0;  ///< H1 / per-axis moment counts the reduction matched
    int k2 = 0;  ///< (per-point maxima when point_orders is non-empty)
    int k3 = 0;
    int full_order = 0;            ///< n of the source system
    std::uint64_t basis_hash = 0;  ///< FNV-1a over the raw bytes of v
    // -- Accuracy record (io format v2; defaults mean "not adaptive"). ------
    /// Per-point trimmed orders; empty for uniform-order reductions.
    std::vector<PointOrder> point_orders;
    /// Relative band-error tolerance the reduction targeted (0 = none).
    double tol = 0.0;
    /// Target frequency band [band_min, band_max] rad/s the error estimate
    /// covers (both 0 = unspecified).
    double band_min = 0.0;
    double band_max = 0.0;
    /// A-posteriori estimated max relative output-H1 error over the band at
    /// build time -- the certificate rom::ServeEngine serves per query
    /// (0 = never estimated).
    double estimated_error = 0.0;
};

/// A self-describing reduction artifact. Aggregate layout keeps the legacy
/// core::MorResult initialisation sites working: {rom, v, build_seconds,
/// raw_vectors, order} with provenance filled afterwards.
struct ReducedModel {
    volterra::Qldae rom;       ///< reduced QLDAE (order q)
    la::Matrix v;              ///< n x q orthonormal projection basis
    double build_seconds = 0;  ///< moment generation + orthogonalisation time
    int raw_vectors = 0;       ///< candidate vectors before deflation
    int order = 0;             ///< q = v.cols()
    Provenance provenance;
};

/// Approximate heap footprint of a materialized model (basis + reduced
/// system payload arrays; bookkeeping overhead excluded). The serving
/// benches report it as resident_bytes_after_load.
std::size_t resident_bytes(const ReducedModel& m);

/// FNV-1a 64-bit over a byte range; the shared hash for basis provenance,
/// io checksums and registry artifact names.
std::uint64_t fnv1a(const void* data, std::size_t bytes,
                    std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Hash of the raw bytes of a basis matrix (dims mixed in, so a reshaped
/// matrix with identical storage hashes differently).
std::uint64_t basis_hash(const la::Matrix& v);

}  // namespace atmor::rom
