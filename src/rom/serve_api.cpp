#include "rom/serve_api.hpp"

#include <cmath>
#include <utility>

#include "rom/io.hpp"
#include "util/check.hpp"
#include "util/key_format.hpp"

namespace atmor::rom {

namespace {

[[noreturn]] void fail_corrupt(const std::string& what) {
    throw IoError(IoErrorKind::corrupt, "serve_api: " + what);
}

}  // namespace

// ---------------------------------------------------------------------------
// BuildSpec / ModelRef
// ---------------------------------------------------------------------------

std::string BuildSpec::key() const {
    std::string out = "spec:" + recipe + "(";
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i) out += ',';
        out += util::key_num(params[i]);
    }
    out += ')';
    return out;
}

ModelRef ModelRef::by_key(std::string key) {
    ModelRef ref;
    ref.kind = Kind::registry_key;
    ref.key = std::move(key);
    return ref;
}

ModelRef ModelRef::from_artifact(std::string path) {
    ModelRef ref;
    ref.kind = Kind::artifact_path;
    ref.path = std::move(path);
    return ref;
}

ModelRef ModelRef::from_spec(BuildSpec spec) {
    ModelRef ref;
    ref.kind = Kind::build_spec;
    ref.spec = std::move(spec);
    return ref;
}

ModelRef ModelRef::in_process(std::string key, Registry::Builder build) {
    ModelRef ref;
    ref.kind = Kind::registry_key;
    ref.key = std::move(key);
    ref.builder = std::move(build);
    return ref;
}

std::string ModelRef::cache_key() const {
    switch (kind) {
        case Kind::registry_key: return key;
        case Kind::artifact_path: return "artifact:" + path;
        case Kind::build_spec: return spec.key();
    }
    return key;
}

// ---------------------------------------------------------------------------
// WaveformSpec -- same closed forms as the circuits::*_input factories, kept
// here (not by calling circuits/) so the rom layer stays below circuits in
// the layer map. Parameter preconditions mirror the factories exactly.
// ---------------------------------------------------------------------------

WaveformSpec WaveformSpec::zero(int arity) {
    WaveformSpec w;
    w.kind = Kind::zero;
    w.arity = arity;
    return w;
}

WaveformSpec WaveformSpec::step(double amplitude, double t_on) {
    WaveformSpec w;
    w.kind = Kind::step;
    w.amplitude = amplitude;
    w.t_on = t_on;
    return w;
}

WaveformSpec WaveformSpec::pulse(double amplitude, double t_on, double rise, double t_off,
                                 double fall) {
    WaveformSpec w;
    w.kind = Kind::pulse;
    w.amplitude = amplitude;
    w.t_on = t_on;
    w.rise = rise;
    w.t_off = t_off;
    w.fall = fall;
    return w;
}

WaveformSpec WaveformSpec::sine(double amplitude, double frequency_hz) {
    WaveformSpec w;
    w.kind = Kind::sine;
    w.amplitude = amplitude;
    w.frequency_hz = frequency_hz;
    return w;
}

WaveformSpec WaveformSpec::surge(double amplitude, double tau_rise, double tau_decay) {
    WaveformSpec w;
    w.kind = Kind::surge;
    w.amplitude = amplitude;
    w.tau_rise = tau_rise;
    w.tau_decay = tau_decay;
    return w;
}

WaveformSpec WaveformSpec::multi_tone(std::vector<double> amplitudes,
                                      std::vector<double> freqs_hz,
                                      std::vector<double> phases) {
    WaveformSpec w;
    w.kind = Kind::multi_tone;
    w.tone_amplitudes = std::move(amplitudes);
    w.tones_hz = std::move(freqs_hz);
    w.tone_phases = std::move(phases);
    return w;
}

WaveformSpec WaveformSpec::am(double amplitude, double carrier_hz, double mod_hz,
                              double depth) {
    WaveformSpec w;
    w.kind = Kind::am;
    w.amplitude = amplitude;
    w.frequency_hz = carrier_hz;
    w.mod_hz = mod_hz;
    w.mod_depth = depth;
    return w;
}

ode::InputFn WaveformSpec::instantiate() const {
    using la::Vec;
    switch (kind) {
        case Kind::zero: {
            ATMOR_REQUIRE(arity >= 1, "WaveformSpec: zero arity >= 1");
            const int n = arity;
            return [n](double) { return Vec(static_cast<std::size_t>(n), 0.0); };
        }
        case Kind::step: {
            const double a = amplitude, on = t_on;
            return [a, on](double t) { return Vec{t >= on ? a : 0.0}; };
        }
        case Kind::pulse: {
            ATMOR_REQUIRE(rise > 0.0 && fall > 0.0 && t_off >= t_on + rise,
                          "WaveformSpec: inconsistent pulse timing");
            const double a = amplitude, on = t_on, r = rise, off = t_off, f = fall;
            return [a, on, r, off, f](double t) {
                double v = 0.0;
                if (t >= on && t < on + r)
                    v = a * (t - on) / r;
                else if (t >= on + r && t < off)
                    v = a;
                else if (t >= off && t < off + f)
                    v = a * (1.0 - (t - off) / f);
                return Vec{v};
            };
        }
        case Kind::sine: {
            const double a = amplitude;
            const double w = 2.0 * M_PI * frequency_hz;
            return [a, w](double t) { return Vec{a * std::sin(w * t)}; };
        }
        case Kind::surge: {
            ATMOR_REQUIRE(tau_decay > tau_rise && tau_rise > 0.0,
                          "WaveformSpec: need tau_decay > tau_rise > 0");
            const double tr = tau_rise, td = tau_decay;
            const double t_peak = std::log(td / tr) * tr * td / (td - tr);
            const double peak = std::exp(-t_peak / td) - std::exp(-t_peak / tr);
            const double scale = amplitude / peak;
            return [scale, tr, td](double t) {
                if (t <= 0.0) return Vec{0.0};
                return Vec{scale * (std::exp(-t / td) - std::exp(-t / tr))};
            };
        }
        case Kind::multi_tone: {
            ATMOR_REQUIRE(!tone_amplitudes.empty(),
                          "WaveformSpec: multi_tone needs at least one tone");
            ATMOR_REQUIRE(tones_hz.size() == tone_amplitudes.size(),
                          "WaveformSpec: multi_tone amplitude/frequency length mismatch");
            ATMOR_REQUIRE(tone_phases.empty() ||
                              tone_phases.size() == tone_amplitudes.size(),
                          "WaveformSpec: multi_tone phase length mismatch");
            std::vector<double> omegas(tones_hz.size());
            for (std::size_t k = 0; k < tones_hz.size(); ++k)
                omegas[k] = 2.0 * M_PI * tones_hz[k];
            std::vector<double> phases = tone_phases;
            if (phases.empty()) phases.assign(tone_amplitudes.size(), 0.0);
            return [amps = tone_amplitudes, omegas = std::move(omegas),
                    phases = std::move(phases)](double t) {
                double v = 0.0;
                for (std::size_t k = 0; k < amps.size(); ++k)
                    v += amps[k] * std::sin(omegas[k] * t + phases[k]);
                return Vec{v};
            };
        }
        case Kind::am: {
            ATMOR_REQUIRE(mod_depth >= 0.0 && mod_depth <= 1.0,
                          "WaveformSpec: am depth must be in [0, 1]");
            ATMOR_REQUIRE(frequency_hz > 0.0,
                          "WaveformSpec: am carrier frequency must be positive");
            const double a = amplitude, depth = mod_depth;
            const double wc = 2.0 * M_PI * frequency_hz;
            const double wm = 2.0 * M_PI * mod_hz;
            return [a, depth, wc, wm](double t) {
                return Vec{a * (1.0 + depth * std::sin(wm * t)) * std::sin(wc * t)};
            };
        }
    }
    ATMOR_REQUIRE(false, "WaveformSpec: unknown kind");
    return {};
}

// ---------------------------------------------------------------------------
// TransientSpec
// ---------------------------------------------------------------------------

TransientSpec TransientSpec::from_options(const ode::TransientOptions& opt) {
    TransientSpec s;
    s.t_end = opt.t_end;
    s.dt = opt.dt;
    s.method = opt.method;
    s.record_stride = opt.record_stride;
    s.newton_tol = opt.newton_tol;
    s.newton_max_iter = opt.newton_max_iter;
    s.rkf_tol = opt.rkf_tol;
    s.dt_min = opt.dt_min;
    s.dt_max = opt.dt_max;
    s.refactor_every_step = opt.refactor_every_step;
    return s;
}

ode::TransientOptions TransientSpec::to_options() const {
    ode::TransientOptions opt;
    opt.t_end = t_end;
    opt.dt = dt;
    opt.method = method;
    opt.record_stride = record_stride;
    opt.newton_tol = newton_tol;
    opt.newton_max_iter = newton_max_iter;
    opt.rkf_tol = rkf_tol;
    opt.dt_min = dt_min;
    opt.dt_max = dt_max;
    opt.refactor_every_step = refactor_every_step;
    return opt;
}

const char* to_string(RequestKind kind) {
    switch (kind) {
        case RequestKind::frequency_sweep: return "frequency_sweep";
        case RequestKind::transient_batch: return "transient_batch";
        case RequestKind::parametric_query: return "parametric_query";
        case RequestKind::certificate: return "certificate";
        case RequestKind::parametric_batch: return "parametric_batch";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Codec helpers
// ---------------------------------------------------------------------------

namespace {

void write_model_ref(Writer& w, const ModelRef& ref) {
    ATMOR_REQUIRE(!ref.builder,
                  "encode_request: ModelRef carries an in-process builder lambda "
                  "(code cannot cross the wire); use by_key/from_artifact/from_spec");
    w.u8(static_cast<std::uint8_t>(ref.kind));
    w.str(ref.key);
    w.str(ref.path);
    w.str(ref.spec.recipe);
    w.vec(ref.spec.params);
}

ModelRef read_model_ref(Reader& r) {
    ModelRef ref;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(ModelRef::Kind::build_spec))
        fail_corrupt("unknown ModelRef kind");
    ref.kind = static_cast<ModelRef::Kind>(kind);
    ref.key = r.str();
    ref.path = r.str();
    ref.spec.recipe = r.str();
    ref.spec.params = r.vec();
    return ref;
}

void write_waveform(Writer& w, const WaveformSpec& spec) {
    w.u8(static_cast<std::uint8_t>(spec.kind));
    w.i32(spec.arity);
    w.f64(spec.amplitude);
    w.f64(spec.t_on);
    w.f64(spec.rise);
    w.f64(spec.t_off);
    w.f64(spec.fall);
    w.f64(spec.frequency_hz);
    w.f64(spec.tau_rise);
    w.f64(spec.tau_decay);
    // Kind-gated extensions keep the original kinds' byte layout untouched.
    if (spec.kind == WaveformSpec::Kind::multi_tone) {
        w.vec(spec.tone_amplitudes);
        w.vec(spec.tones_hz);
        w.vec(spec.tone_phases);
    }
    if (spec.kind == WaveformSpec::Kind::am) {
        w.f64(spec.mod_hz);
        w.f64(spec.mod_depth);
    }
}

WaveformSpec read_waveform(Reader& r) {
    WaveformSpec spec;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(WaveformSpec::Kind::am))
        fail_corrupt("unknown WaveformSpec kind");
    spec.kind = static_cast<WaveformSpec::Kind>(kind);
    spec.arity = r.i32();
    spec.amplitude = r.f64();
    spec.t_on = r.f64();
    spec.rise = r.f64();
    spec.t_off = r.f64();
    spec.fall = r.f64();
    spec.frequency_hz = r.f64();
    spec.tau_rise = r.f64();
    spec.tau_decay = r.f64();
    if (spec.kind == WaveformSpec::Kind::multi_tone) {
        spec.tone_amplitudes = r.vec();
        spec.tones_hz = r.vec();
        spec.tone_phases = r.vec();
    }
    if (spec.kind == WaveformSpec::Kind::am) {
        spec.mod_hz = r.f64();
        spec.mod_depth = r.f64();
    }
    return spec;
}

void write_transient_spec(Writer& w, const TransientSpec& s) {
    w.f64(s.t_end);
    w.f64(s.dt);
    w.u8(static_cast<std::uint8_t>(s.method));
    w.i32(s.record_stride);
    w.f64(s.newton_tol);
    w.i32(s.newton_max_iter);
    w.f64(s.rkf_tol);
    w.f64(s.dt_min);
    w.f64(s.dt_max);
    w.u8(s.refactor_every_step ? 1 : 0);
}

TransientSpec read_transient_spec(Reader& r) {
    TransientSpec s;
    s.t_end = r.f64();
    s.dt = r.f64();
    const std::uint8_t method = r.u8();
    if (method > static_cast<std::uint8_t>(ode::Method::backward_euler))
        fail_corrupt("unknown ode::Method");
    s.method = static_cast<ode::Method>(method);
    s.record_stride = r.i32();
    s.newton_tol = r.f64();
    s.newton_max_iter = r.i32();
    s.rkf_tol = r.f64();
    s.dt_min = r.f64();
    s.dt_max = r.f64();
    s.refactor_every_step = r.u8() != 0;
    return s;
}

void write_zgrid(Writer& w, const std::vector<la::Complex>& grid) {
    w.u64(grid.size());
    for (la::Complex z : grid) w.complex(z);
}

std::vector<la::Complex> read_zgrid(Reader& r) {
    const std::uint64_t n = r.u64();
    std::vector<la::Complex> grid;
    grid.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = 0; i < n; ++i) grid.push_back(r.complex());
    return grid;
}

void write_certificate(Writer& w, const ErrorCertificate& c) {
    w.str(c.method);
    w.f64(c.tol);
    w.f64(c.band_min);
    w.f64(c.band_max);
    w.f64(c.estimated_error);
    w.i32(c.expansion_points);
    w.i32(c.order);
}

ErrorCertificate read_certificate(Reader& r) {
    ErrorCertificate c;
    c.method = r.str();
    c.tol = r.f64();
    c.band_min = r.f64();
    c.band_max = r.f64();
    c.estimated_error = r.f64();
    c.expansion_points = r.i32();
    c.order = r.i32();
    return c;
}

/// TransientResult minus the wall-time field: solve_seconds encodes as zero
/// so the response bytes are deterministic (bit-identity across daemon and
/// in-process answers is pinned on the encoded form).
void write_transient_result(Writer& w, const ode::TransientResult& res) {
    w.vec(res.t);
    w.u64(res.y.size());
    for (const la::Vec& row : res.y) w.vec(row);
    w.vec(res.x_final);
    w.f64(0.0);  // solve_seconds
    w.u64(static_cast<std::uint64_t>(res.steps));
    w.u64(static_cast<std::uint64_t>(res.newton_iterations));
    w.u64(static_cast<std::uint64_t>(res.factorizations));
}

ode::TransientResult read_transient_result(Reader& r) {
    ode::TransientResult res;
    res.t = r.vec();
    const std::uint64_t ny = r.u64();
    res.y.reserve(static_cast<std::size_t>(ny));
    for (std::uint64_t i = 0; i < ny; ++i) res.y.push_back(r.vec());
    res.x_final = r.vec();
    res.solve_seconds = r.f64();
    res.steps = static_cast<long>(r.u64());
    res.newton_iterations = static_cast<long>(r.u64());
    res.factorizations = static_cast<long>(r.u64());
    return res;
}

}  // namespace

// ---------------------------------------------------------------------------
// Request codec
// ---------------------------------------------------------------------------

std::string encode_request(const ServeRequest& req) {
    Writer w;
    w.str(req.tenant);
    w.u8(static_cast<std::uint8_t>(req.kind()));
    switch (req.kind()) {
        case RequestKind::frequency_sweep: {
            const auto& body = std::get<FrequencySweepRequest>(req.body);
            write_model_ref(w, body.model);
            write_zgrid(w, body.grid);
            break;
        }
        case RequestKind::transient_batch: {
            const auto& body = std::get<TransientBatchRequest>(req.body);
            ATMOR_REQUIRE(body.raw_inputs.empty(),
                          "encode_request: TransientBatchRequest carries raw input "
                          "closures; use WaveformSpec inputs for wire requests");
            write_model_ref(w, body.model);
            w.u64(body.inputs.size());
            for (const WaveformSpec& spec : body.inputs) write_waveform(w, spec);
            write_transient_spec(w, body.options);
            break;
        }
        case RequestKind::parametric_query: {
            const auto& body = std::get<ParametricQueryRequest>(req.body);
            ATMOR_REQUIRE(body.family == nullptr && body.artifact == nullptr,
                          "encode_request: ParametricQueryRequest carries in-process "
                          "family pointers; name the family by family_id");
            ATMOR_REQUIRE(!body.options.fallback_build && !body.options.fallback_key,
                          "encode_request: in-process fallback hooks cannot cross the "
                          "wire; the host's registered fallback applies");
            w.str(body.family_id);
            w.vec(body.coords);
            write_zgrid(w, body.grid);
            w.f64(body.tol);
            w.u8(body.blend ? 1 : 0);
            w.u8(body.allow_fallback ? 1 : 0);
            break;
        }
        case RequestKind::certificate: {
            const auto& body = std::get<CertificateRequest>(req.body);
            write_model_ref(w, body.model);
            break;
        }
        case RequestKind::parametric_batch: {
            const auto& body = std::get<ParametricBatchRequest>(req.body);
            ATMOR_REQUIRE(body.family == nullptr && body.artifact == nullptr,
                          "encode_request: ParametricBatchRequest carries in-process "
                          "family pointers; name the family by family_id");
            ATMOR_REQUIRE(!body.options.fallback_build && !body.options.fallback_key,
                          "encode_request: in-process fallback hooks cannot cross the "
                          "wire; the host's registered fallback applies");
            w.str(body.family_id);
            w.u64(body.coords.size());
            for (const pmor::Point& p : body.coords) w.vec(p);
            write_zgrid(w, body.grid);
            w.f64(body.tol);
            w.u8(body.blend ? 1 : 0);
            w.u8(body.allow_fallback ? 1 : 0);
            break;
        }
    }
    return w.bytes();
}

ServeRequest decode_request(const std::string& payload) {
    Reader r(payload);
    ServeRequest req;
    req.tenant = r.str();
    const std::uint8_t kind = r.u8();
    switch (kind) {
        case static_cast<std::uint8_t>(RequestKind::frequency_sweep): {
            FrequencySweepRequest body;
            body.model = read_model_ref(r);
            body.grid = read_zgrid(r);
            req.body = std::move(body);
            break;
        }
        case static_cast<std::uint8_t>(RequestKind::transient_batch): {
            TransientBatchRequest body;
            body.model = read_model_ref(r);
            const std::uint64_t n = r.u64();
            body.inputs.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) body.inputs.push_back(read_waveform(r));
            body.options = read_transient_spec(r);
            req.body = std::move(body);
            break;
        }
        case static_cast<std::uint8_t>(RequestKind::parametric_query): {
            ParametricQueryRequest body;
            body.family_id = r.str();
            body.coords = r.vec();
            body.grid = read_zgrid(r);
            body.tol = r.f64();
            body.blend = r.u8() != 0;
            body.allow_fallback = r.u8() != 0;
            req.body = std::move(body);
            break;
        }
        case static_cast<std::uint8_t>(RequestKind::certificate): {
            CertificateRequest body;
            body.model = read_model_ref(r);
            req.body = std::move(body);
            break;
        }
        case static_cast<std::uint8_t>(RequestKind::parametric_batch): {
            ParametricBatchRequest body;
            body.family_id = r.str();
            const std::uint64_t n = r.u64();
            body.coords.reserve(static_cast<std::size_t>(n));
            for (std::uint64_t i = 0; i < n; ++i) body.coords.push_back(r.vec());
            body.grid = read_zgrid(r);
            body.tol = r.f64();
            body.blend = r.u8() != 0;
            body.allow_fallback = r.u8() != 0;
            req.body = std::move(body);
            break;
        }
        default: fail_corrupt("unknown ServeRequest kind");
    }
    if (!r.at_end()) fail_corrupt("trailing bytes after ServeRequest");
    return req;
}

std::string peek_tenant(const std::string& payload) {
    Reader r(payload);
    return r.str();
}

// ---------------------------------------------------------------------------
// Response codec
// ---------------------------------------------------------------------------

std::string encode_response(const ServeResponse& resp) {
    Writer w;
    w.u8(static_cast<std::uint8_t>(resp.kind));
    w.i32(static_cast<std::int32_t>(resp.error.code));
    w.str(resp.error.message);
    write_certificate(w, resp.certificate);
    w.u64(resp.response.size());
    for (const la::ZMatrix& m : resp.response) w.zmatrix(m);
    w.u64(resp.transients.size());
    for (const ode::TransientResult& t : resp.transients) write_transient_result(w, t);
    w.i32(resp.member);
    w.i32(resp.blended_with);
    w.f64(resp.blend_weight);
    w.u8(resp.fallback ? 1 : 0);
    w.u64(resp.batch_member.size());
    for (const int m : resp.batch_member) w.i32(m);
    w.vec(resp.batch_error);
    w.u64(resp.batch_fallback.size());
    for (const std::uint8_t f : resp.batch_fallback) w.u8(f);
    return w.bytes();
}

ServeResponse decode_response(const std::string& payload) {
    Reader r(payload);
    ServeResponse resp;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(RequestKind::parametric_batch))
        fail_corrupt("unknown ServeResponse kind");
    resp.kind = static_cast<RequestKind>(kind);
    resp.error.code = static_cast<util::ErrorCode>(r.i32());
    resp.error.message = r.str();
    resp.certificate = read_certificate(r);
    const std::uint64_t nresp = r.u64();
    resp.response.reserve(static_cast<std::size_t>(nresp));
    for (std::uint64_t i = 0; i < nresp; ++i) resp.response.push_back(r.zmatrix());
    const std::uint64_t ntrans = r.u64();
    resp.transients.reserve(static_cast<std::size_t>(ntrans));
    for (std::uint64_t i = 0; i < ntrans; ++i)
        resp.transients.push_back(read_transient_result(r));
    resp.member = r.i32();
    resp.blended_with = r.i32();
    resp.blend_weight = r.f64();
    resp.fallback = r.u8() != 0;
    const std::uint64_t nbm = r.u64();
    resp.batch_member.reserve(static_cast<std::size_t>(nbm));
    for (std::uint64_t i = 0; i < nbm; ++i) resp.batch_member.push_back(r.i32());
    resp.batch_error = r.vec();
    const std::uint64_t nbf = r.u64();
    resp.batch_fallback.reserve(static_cast<std::size_t>(nbf));
    for (std::uint64_t i = 0; i < nbf; ++i) resp.batch_fallback.push_back(r.u8());
    if (!r.at_end()) fail_corrupt("trailing bytes after ServeResponse");
    return resp;
}

}  // namespace atmor::rom
