#include "rom/reduced_model.hpp"

namespace atmor::rom {

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    return h;
}

std::uint64_t basis_hash(const la::Matrix& v) {
    const std::int64_t dims[2] = {v.rows(), v.cols()};
    std::uint64_t h = fnv1a(dims, sizeof(dims));
    return fnv1a(v.data(),
                 static_cast<std::size_t>(v.rows()) * static_cast<std::size_t>(v.cols()) *
                     sizeof(double),
                 h);
}

}  // namespace atmor::rom
