#include "rom/reduced_model.hpp"

namespace atmor::rom {

namespace {

std::size_t matrix_bytes(const la::Matrix& m) {
    return static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols()) *
           sizeof(double);
}

std::size_t csr_bytes(const sparse::CsrMatrix& m) {
    return m.row_ptr().size() * sizeof(int) + m.col_idx().size() * sizeof(int) +
           m.values().size() * sizeof(double);
}

}  // namespace

std::size_t resident_bytes(const ReducedModel& m) {
    std::size_t bytes = matrix_bytes(m.v);
    const volterra::Qldae& sys = m.rom;
    if (sys.is_sparse()) {
        bytes += csr_bytes(*sys.g1_csr()) + csr_bytes(*sys.b_csr()) + csr_bytes(*sys.c_csr());
        for (const sparse::CsrMatrix& d : sys.d1_csr_blocks()) bytes += csr_bytes(d);
    } else {
        bytes += matrix_bytes(sys.g1()) + matrix_bytes(sys.b()) + matrix_bytes(sys.c());
        if (sys.has_bilinear())
            for (int i = 0; i < sys.inputs(); ++i) bytes += matrix_bytes(sys.d1(i));
    }
    bytes += sys.g2().entry_count() * sizeof(sparse::SparseTensor3::Entry);
    bytes += sys.g3().entry_count() * sizeof(sparse::SparseTensor4::Entry);
    return bytes;
}

std::uint64_t fnv1a(const void* data, std::size_t bytes, std::uint64_t seed) {
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= kPrime;
    }
    return h;
}

std::uint64_t basis_hash(const la::Matrix& v) {
    const std::int64_t dims[2] = {v.rows(), v.cols()};
    std::uint64_t h = fnv1a(dims, sizeof(dims));
    return fnv1a(v.data(),
                 static_cast<std::size_t>(v.rows()) * static_cast<std::size_t>(v.cols()) *
                     sizeof(double),
                 h);
}

}  // namespace atmor::rom
