#include "rom/family.hpp"

namespace atmor::rom {

namespace {

template <class Range, class CoordsOf>
int nearest(const pmor::ParamSpace& space, const pmor::Point& coords, const Range& items,
            CoordsOf coords_of) {
    int best = -1;
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < items.size(); ++i) {
        const double d = space.distance(coords, coords_of(items[i]));
        if (d < best_dist) {
            best_dist = d;
            best = static_cast<int>(i);
        }
    }
    return best;
}

}  // namespace

int Family::locate(const pmor::Point& coords) const {
    return nearest(space, coords, cells, [](const CoverageCell& c) { return c.coords; });
}

int Family::nearest_member(const pmor::Point& coords) const {
    return nearest(space, coords, members, [](const FamilyMember& m) { return m.coords; });
}

std::size_t resident_bytes(const Family& f) {
    std::size_t bytes = 0;
    for (const FamilyMember& m : f.members) bytes += resident_bytes(m.model);
    return bytes;
}

}  // namespace atmor::rom
