// The parametric ROM family artifact: many member ROMs covering a sampled
// parameter box, with the offline certification metadata that makes online
// member selection a lookup instead of a full-order solve.
//
// A Family is what pmor::FamilyBuilder produces and rom::ServeEngine::
// serve_parametric consumes: the parameter space, the member ROMs with their
// parameter coordinates, and a COVERAGE TABLE over the training grid -- for
// every training point, which member approximates it best and at what
// certified (a-posteriori, mor::ErrorEstimator) cross error, plus the
// runner-up for two-member blending. Serving a query then reduces to
// locating the nearest training cell and reading its certificate; a cell no
// member certifies routes the query to the on-demand fallback build.
//
// Serialized as io format v3 (rom/io.hpp: save_family/load_family); v1/v2
// single-model artifacts remain loadable.
#pragma once

#include <limits>
#include <string>
#include <vector>

#include "pmor/param_space.hpp"
#include "rom/reduced_model.hpp"

namespace atmor::rom {

/// One member ROM pinned at a parameter point.
struct FamilyMember {
    pmor::Point coords;            ///< parameter coordinates the ROM was built at
    /// Worst certified cross error over the training cells this member
    /// covers (the certificate served for any query landing in them).
    double certified_error = 0.0;
    /// Largest normalized distance from `coords` to a covered training cell
    /// (informational: how far this member's certified region reaches).
    double coverage_radius = 0.0;
    ReducedModel model;
};

/// One training-grid cell of the coverage table.
struct CoverageCell {
    pmor::Point coords;  ///< training point (cell site)
    /// Member with the SMALLEST cross error here (-1 only when every member
    /// was structurally incompatible, i.e. infinite error). The cell is
    /// certified iff best >= 0 AND best_error <= the serving tolerance --
    /// an unconverged family has cells whose best member exceeds tol.
    int best = -1;
    double best_error = std::numeric_limits<double>::infinity();
    int second = -1;     ///< runner-up member (for blending); -1 when absent
    double second_error = std::numeric_limits<double>::infinity();
};

struct Family {
    std::string family_id;
    pmor::ParamSpace space;
    double tol = 0.0;               ///< certified cross-error target
    int training_grid_per_dim = 0;  ///< coverage-table resolution
    /// Worst best_error over the whole table (<= tol iff converged).
    double max_training_error = 0.0;
    bool converged = false;
    std::vector<FamilyMember> members;
    std::vector<CoverageCell> cells;

    /// Index of the training cell nearest to `coords` (normalized metric);
    /// -1 for an empty table.
    [[nodiscard]] int locate(const pmor::Point& coords) const;

    /// Index of the member nearest to `coords`; -1 for an empty family.
    [[nodiscard]] int nearest_member(const pmor::Point& coords) const;
};

/// Approximate heap footprint of every materialized member (sum of
/// rom::resident_bytes over the members). What an eager whole-artifact load
/// keeps resident; the lazy mmap reader (rom/family_artifact.hpp) reports
/// only its touched subset.
std::size_t resident_bytes(const Family& f);

}  // namespace atmor::rom
