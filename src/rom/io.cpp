#include "rom/io.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "rom/family_artifact.hpp"
#include "util/check.hpp"

namespace atmor::rom {

namespace {

constexpr char kMagic[8] = {'A', 'T', 'M', 'O', 'R', 'R', 'O', 'M'};
constexpr std::size_t kHeaderBytes = sizeof(kMagic) + sizeof(std::uint32_t) +
                                     sizeof(std::uint64_t);
constexpr std::size_t kChecksumBytes = sizeof(std::uint64_t);

[[noreturn]] void fail(IoErrorKind kind, const std::string& what) {
    throw IoError(kind, std::string("rom::io: ") + what);
}

/// Translate a structural precondition failure (from_parts, tensor add,
/// Qldae validation) into the typed corrupt error the loaders promise.
template <class Fn>
auto structurally(Fn&& fn) -> decltype(fn()) {
    try {
        return fn();
    } catch (const util::PreconditionError& e) {
        fail(IoErrorKind::corrupt, std::string("invalid structure: ") + e.what());
    }
}

}  // namespace

const char* to_string(IoErrorKind kind) {
    switch (kind) {
        case IoErrorKind::open_failed:
            return "open_failed";
        case IoErrorKind::truncated:
            return "truncated";
        case IoErrorKind::bad_magic:
            return "bad_magic";
        case IoErrorKind::version_mismatch:
            return "version_mismatch";
        case IoErrorKind::checksum_mismatch:
            return "checksum_mismatch";
        case IoErrorKind::corrupt:
            return "corrupt";
    }
    return "unknown";
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

void Writer::raw(const void* data, std::size_t n) {
    buf_.append(static_cast<const char*>(data), n);
}

void Writer::u8(std::uint8_t v) { raw(&v, sizeof(v)); }
void Writer::u32(std::uint32_t v) { raw(&v, sizeof(v)); }
void Writer::u64(std::uint64_t v) { raw(&v, sizeof(v)); }
void Writer::i32(std::int32_t v) { raw(&v, sizeof(v)); }
void Writer::f64(double v) { raw(&v, sizeof(v)); }

void Writer::str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
}

void Writer::complex(la::Complex z) {
    f64(z.real());
    f64(z.imag());
}

void Writer::matrix(const la::Matrix& m) {
    i32(m.rows());
    i32(m.cols());
    raw(m.data(), static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols()) *
                      sizeof(double));
}

void Writer::zmatrix(const la::ZMatrix& m) {
    i32(m.rows());
    i32(m.cols());
    raw(m.data(), static_cast<std::size_t>(m.rows()) * static_cast<std::size_t>(m.cols()) *
                      sizeof(la::Complex));
}

void Writer::vec(const la::Vec& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
}

void Writer::csr(const sparse::CsrMatrix& m) {
    i32(m.rows());
    i32(m.cols());
    u64(m.values().size());
    raw(m.row_ptr().data(), m.row_ptr().size() * sizeof(int));
    raw(m.col_idx().data(), m.col_idx().size() * sizeof(int));
    raw(m.values().data(), m.values().size() * sizeof(double));
}

void Writer::tensor3(const sparse::SparseTensor3& t) {
    i32(t.rows());
    i32(t.n1());
    i32(t.n2());
    u64(t.entries().size());
    for (const auto& e : t.entries()) {
        i32(e.row);
        i32(e.i);
        i32(e.j);
        f64(e.value);
    }
}

void Writer::tensor4(const sparse::SparseTensor4& t) {
    i32(t.n());
    u64(t.entries().size());
    for (const auto& e : t.entries()) {
        i32(e.row);
        i32(e.i);
        i32(e.j);
        i32(e.k);
        f64(e.value);
    }
}

void Writer::qldae(const volterra::Qldae& sys) {
    u8(sys.is_sparse() ? 1 : 0);
    const std::uint32_t nd1 =
        sys.has_bilinear() ? static_cast<std::uint32_t>(sys.inputs()) : 0;
    if (sys.is_sparse()) {
        csr(*sys.g1_csr());
        csr(*sys.b_csr());
        csr(*sys.c_csr());
        u32(nd1);
        for (std::uint32_t i = 0; i < nd1; ++i)
            csr(sys.d1_csr_blocks()[static_cast<std::size_t>(i)]);
    } else {
        matrix(sys.g1());
        matrix(sys.b());
        matrix(sys.c());
        u32(nd1);
        for (std::uint32_t i = 0; i < nd1; ++i) matrix(sys.d1(static_cast<int>(i)));
    }
    tensor3(sys.g2());
    tensor4(sys.g3());
}

void Writer::param_space(const pmor::ParamSpace& space) {
    const auto& dims = space.descriptors();
    u64(dims.size());
    for (const pmor::ParamDescriptor& d : dims) {
        str(d.name);
        f64(d.min);
        f64(d.max);
        u8(static_cast<std::uint8_t>(d.scale));
    }
}

void Writer::coverage_cells(const std::vector<CoverageCell>& cells) {
    u64(cells.size());
    for (const CoverageCell& c : cells) {
        u64(c.coords.size());
        for (double v : c.coords) f64(v);
        i32(c.best);
        f64(c.best_error);
        i32(c.second);
        f64(c.second_error);
    }
}

void Writer::provenance(const Provenance& p) {
    str(p.source);
    str(p.method);
    u64(p.expansion_points.size());
    for (la::Complex s0 : p.expansion_points) complex(s0);
    i32(p.k1);
    i32(p.k2);
    i32(p.k3);
    i32(p.full_order);
    u64(p.basis_hash);
    // v2 accuracy block.
    u64(p.point_orders.size());
    for (const PointOrder& po : p.point_orders) {
        i32(po.k1);
        i32(po.k2);
        i32(po.k3);
    }
    f64(p.tol);
    f64(p.band_min);
    f64(p.band_max);
    f64(p.estimated_error);
}

void Writer::family(const Family& f) {
    str(f.family_id);
    param_space(f.space);
    f64(f.tol);
    i32(f.training_grid_per_dim);
    f64(f.max_training_error);
    u8(f.converged ? 1 : 0);
    u64(f.members.size());
    for (const FamilyMember& m : f.members) {
        u64(m.coords.size());
        for (double c : m.coords) f64(c);
        f64(m.certified_error);
        f64(m.coverage_radius);
        model(m.model);
    }
    coverage_cells(f.cells);
}

void Writer::model(const ReducedModel& m) {
    provenance(m.provenance);
    f64(m.build_seconds);
    i32(m.raw_vectors);
    i32(m.order);
    qldae(m.rom);
    matrix(m.v);
}

// ---------------------------------------------------------------------------
// Reader.
// ---------------------------------------------------------------------------

void Reader::raw(void* out, std::size_t n) {
    if (buf_.size() - pos_ < n)
        fail(IoErrorKind::truncated, "payload ends mid-structure (need " + std::to_string(n) +
                                         " bytes, have " + std::to_string(buf_.size() - pos_) +
                                         ")");
    std::memcpy(out, buf_.data() + pos_, n);
    pos_ += n;
}

std::size_t Reader::count(std::uint64_t n, std::size_t elem_size) {
    if (n > (buf_.size() - pos_) / elem_size)
        fail(IoErrorKind::truncated,
             "element count " + std::to_string(n) + " exceeds remaining payload");
    return static_cast<std::size_t>(n);
}

std::uint8_t Reader::u8() {
    std::uint8_t v;
    raw(&v, sizeof(v));
    return v;
}

std::uint32_t Reader::u32() {
    std::uint32_t v;
    raw(&v, sizeof(v));
    return v;
}

std::uint64_t Reader::u64() {
    std::uint64_t v;
    raw(&v, sizeof(v));
    return v;
}

std::int32_t Reader::i32() {
    std::int32_t v;
    raw(&v, sizeof(v));
    return v;
}

double Reader::f64() {
    double v;
    raw(&v, sizeof(v));
    return v;
}

std::string Reader::str() {
    const std::size_t n = count(u64(), 1);
    std::string s(n, '\0');
    raw(s.data(), n);
    return s;
}

la::Complex Reader::complex() {
    const double re = f64();
    const double im = f64();
    return la::Complex(re, im);
}

la::Matrix Reader::matrix() {
    const std::int32_t rows = i32();
    const std::int32_t cols = i32();
    if (rows < 0 || cols < 0) fail(IoErrorKind::corrupt, "negative matrix dimension");
    const std::size_t n =
        count(static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols),
              sizeof(double));
    la::Matrix m(rows, cols);
    raw(m.data(), n * sizeof(double));
    return m;
}

la::ZMatrix Reader::zmatrix() {
    const std::int32_t rows = i32();
    const std::int32_t cols = i32();
    if (rows < 0 || cols < 0) fail(IoErrorKind::corrupt, "negative matrix dimension");
    const std::size_t n =
        count(static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols),
              sizeof(la::Complex));
    la::ZMatrix m(rows, cols);
    raw(m.data(), n * sizeof(la::Complex));
    return m;
}

la::Vec Reader::vec() {
    const std::size_t n = count(u64(), sizeof(double));
    la::Vec v(n);
    raw(v.data(), n * sizeof(double));
    return v;
}

sparse::CsrMatrix Reader::csr() {
    const std::int32_t rows = i32();
    const std::int32_t cols = i32();
    if (rows < 0 || cols < 0) fail(IoErrorKind::corrupt, "negative CSR dimension");
    const std::uint64_t nnz64 = u64();
    std::vector<int> row_ptr(count(static_cast<std::uint64_t>(rows) + 1, sizeof(int)));
    raw(row_ptr.data(), row_ptr.size() * sizeof(int));
    std::vector<int> col_idx(count(nnz64, sizeof(int)));
    raw(col_idx.data(), col_idx.size() * sizeof(int));
    std::vector<double> values(count(nnz64, sizeof(double)));
    raw(values.data(), values.size() * sizeof(double));
    return structurally([&] {
        return sparse::CsrMatrix::from_parts(rows, cols, std::move(row_ptr),
                                             std::move(col_idx), std::move(values));
    });
}

sparse::SparseTensor3 Reader::tensor3() {
    const std::int32_t rows = i32();
    const std::int32_t n1 = i32();
    const std::int32_t n2 = i32();
    if (rows < 0 || n1 < 0 || n2 < 0) fail(IoErrorKind::corrupt, "negative tensor3 dimension");
    const std::size_t n = count(u64(), 3 * sizeof(std::int32_t) + sizeof(double));
    return structurally([&] {
        sparse::SparseTensor3 t(rows, n1, n2);
        for (std::size_t e = 0; e < n; ++e) {
            const std::int32_t r = i32();
            const std::int32_t i = i32();
            const std::int32_t j = i32();
            t.add(r, i, j, f64());
        }
        return t;
    });
}

sparse::SparseTensor4 Reader::tensor4() {
    const std::int32_t dim = i32();
    if (dim < 0) fail(IoErrorKind::corrupt, "negative tensor4 dimension");
    const std::size_t n = count(u64(), 4 * sizeof(std::int32_t) + sizeof(double));
    return structurally([&] {
        sparse::SparseTensor4 t(dim);
        for (std::size_t e = 0; e < n; ++e) {
            const std::int32_t r = i32();
            const std::int32_t i = i32();
            const std::int32_t j = i32();
            const std::int32_t k = i32();
            t.add(r, i, j, k, f64());
        }
        return t;
    });
}

volterra::Qldae Reader::qldae() {
    const std::uint8_t tag = u8();
    if (tag > 1) fail(IoErrorKind::corrupt, "unknown Qldae storage tag");
    if (tag == 1) {
        sparse::CsrMatrix g1 = csr();
        sparse::CsrMatrix b = csr();
        sparse::CsrMatrix c = csr();
        const std::size_t nd1 = count(u32(), 1);
        std::vector<sparse::CsrMatrix> d1;
        d1.reserve(nd1);
        for (std::size_t i = 0; i < nd1; ++i) d1.push_back(csr());
        sparse::SparseTensor3 g2 = tensor3();
        sparse::SparseTensor4 g3 = tensor4();
        return structurally([&] {
            return volterra::Qldae(std::move(g1), std::move(g2), std::move(g3), std::move(d1),
                                   std::move(b), std::move(c));
        });
    }
    la::Matrix g1 = matrix();
    la::Matrix b = matrix();
    la::Matrix c = matrix();
    const std::size_t nd1 = count(u32(), 1);
    std::vector<la::Matrix> d1;
    d1.reserve(nd1);
    for (std::size_t i = 0; i < nd1; ++i) d1.push_back(matrix());
    sparse::SparseTensor3 g2 = tensor3();
    sparse::SparseTensor4 g3 = tensor4();
    return structurally([&] {
        return volterra::Qldae(std::move(g1), std::move(g2), std::move(g3), std::move(d1),
                               std::move(b), std::move(c));
    });
}

Provenance Reader::provenance() {
    Provenance prov;
    prov.source = str();
    prov.method = str();
    const std::size_t npoints = count(u64(), 2 * sizeof(double));
    prov.expansion_points.reserve(npoints);
    for (std::size_t p = 0; p < npoints; ++p) prov.expansion_points.push_back(complex());
    prov.k1 = i32();
    prov.k2 = i32();
    prov.k3 = i32();
    prov.full_order = i32();
    prov.basis_hash = u64();
    if (version_caps(version_).accuracy_provenance) {
        const std::size_t norders = count(u64(), 3 * sizeof(std::int32_t));
        prov.point_orders.reserve(norders);
        for (std::size_t p = 0; p < norders; ++p) {
            PointOrder po;
            po.k1 = i32();
            po.k2 = i32();
            po.k3 = i32();
            prov.point_orders.push_back(po);
        }
        prov.tol = f64();
        prov.band_min = f64();
        prov.band_max = f64();
        prov.estimated_error = f64();
    }
    return prov;
}

ReducedModel Reader::model() {
    Provenance prov = provenance();
    const double build_seconds = f64();
    const std::int32_t raw_vectors = i32();
    const std::int32_t order = i32();
    volterra::Qldae rom = qldae();
    la::Matrix v = matrix();
    if (order != v.cols() || rom.order() != order)
        fail(IoErrorKind::corrupt, "order field disagrees with the stored ROM/basis");
    ReducedModel m{std::move(rom), std::move(v), build_seconds, raw_vectors, order,
                   std::move(prov)};
    return m;
}

void Reader::expect_kind(PayloadKind k) {
    if (!version_caps(version_).payload_kind_tag) return;  // pre-v3: no tag
    const std::uint8_t tag = u8();
    if (tag != static_cast<std::uint8_t>(k))
        fail(IoErrorKind::corrupt, "payload kind " + std::to_string(tag) + ", expected " +
                                       std::to_string(static_cast<int>(k)));
}

pmor::ParamSpace Reader::param_space() {
    const std::size_t ndims = count(u64(), 1);
    std::vector<pmor::ParamDescriptor> dims;
    dims.reserve(ndims);
    for (std::size_t d = 0; d < ndims; ++d) {
        pmor::ParamDescriptor desc;
        desc.name = str();
        desc.min = f64();
        desc.max = f64();
        const std::uint8_t scale = u8();
        if (scale > 1) fail(IoErrorKind::corrupt, "unknown parameter scale tag");
        desc.scale = static_cast<pmor::Scale>(scale);
        dims.push_back(std::move(desc));
    }
    return structurally([&] { return pmor::ParamSpace(std::move(dims)); });
}

std::vector<CoverageCell> Reader::coverage_cells(std::size_t ndims, int member_count) {
    const std::size_t ncells = count(u64(), 1);
    std::vector<CoverageCell> cells;
    cells.reserve(ncells);
    for (std::size_t i = 0; i < ncells; ++i) {
        CoverageCell cell;
        const std::size_t nc = count(u64(), sizeof(double));
        if (nc != ndims)
            fail(IoErrorKind::corrupt, "cell coordinate count disagrees with the space");
        cell.coords.reserve(nc);
        for (std::size_t c = 0; c < nc; ++c) cell.coords.push_back(f64());
        cell.best = i32();
        cell.best_error = f64();
        cell.second = i32();
        cell.second_error = f64();
        if (cell.best < -1 || cell.best >= member_count || cell.second < -1 ||
            cell.second >= member_count)
            fail(IoErrorKind::corrupt, "coverage cell references a missing member");
        cells.push_back(std::move(cell));
    }
    return cells;
}

Family Reader::family() {
    Family f;
    f.family_id = str();
    f.space = param_space();
    const std::size_t ndims = static_cast<std::size_t>(f.space.dims());
    f.tol = f64();
    f.training_grid_per_dim = i32();
    f.max_training_error = f64();
    const std::uint8_t conv = u8();
    if (conv > 1) fail(IoErrorKind::corrupt, "family converged flag not 0/1");
    f.converged = conv == 1;

    const std::size_t nmembers = count(u64(), 1);
    f.members.reserve(nmembers);
    for (std::size_t m = 0; m < nmembers; ++m) {
        const std::size_t nc = count(u64(), sizeof(double));
        if (nc != ndims)
            fail(IoErrorKind::corrupt, "member coordinate count disagrees with the space");
        pmor::Point coords;
        coords.reserve(nc);
        for (std::size_t c = 0; c < nc; ++c) coords.push_back(f64());
        const double certified_error = f64();
        const double coverage_radius = f64();
        f.members.push_back(
            FamilyMember{std::move(coords), certified_error, coverage_radius, model()});
    }

    f.cells = coverage_cells(ndims, static_cast<int>(nmembers));
    return f;
}

// ---------------------------------------------------------------------------
// Framing + top-level API.
// ---------------------------------------------------------------------------

std::string frame(const std::string& payload) { return frame(payload, kFormatVersion); }

std::string frame(const std::string& payload, std::uint32_t version) {
    std::string out;
    out.reserve(kHeaderBytes + payload.size() + kChecksumBytes);
    out.append(kMagic, sizeof(kMagic));
    out.append(reinterpret_cast<const char*>(&version), sizeof(version));
    const std::uint64_t size = payload.size();
    out.append(reinterpret_cast<const char*>(&size), sizeof(size));
    out.append(payload);
    const std::uint64_t checksum = fnv1a(payload.data(), payload.size());
    out.append(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    return out;
}

std::string unframe(const std::string& bytes, std::uint32_t* version_out) {
    if (bytes.size() < kHeaderBytes + kChecksumBytes)
        fail(IoErrorKind::truncated, "file smaller than the artifact header");
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        fail(IoErrorKind::bad_magic, "not an atmor ROM artifact");
    std::uint32_t version;
    std::memcpy(&version, bytes.data() + sizeof(kMagic), sizeof(version));
    if (version < kMinSupportedVersion || version > kFormatVersion)
        fail(IoErrorKind::version_mismatch,
             "artifact format version " + std::to_string(version) + ", reader supports " +
                 std::to_string(kMinSupportedVersion) + ".." + std::to_string(kFormatVersion));
    if (version_out) *version_out = version;
    std::uint64_t size;
    std::memcpy(&size, bytes.data() + sizeof(kMagic) + sizeof(version), sizeof(size));
    if (size != bytes.size() - kHeaderBytes - kChecksumBytes)
        fail(IoErrorKind::truncated, "payload size field disagrees with the file size");
    std::string payload = bytes.substr(kHeaderBytes, static_cast<std::size_t>(size));
    std::uint64_t stored;
    std::memcpy(&stored, bytes.data() + kHeaderBytes + payload.size(), sizeof(stored));
    if (stored != fnv1a(payload.data(), payload.size()))
        fail(IoErrorKind::checksum_mismatch, "payload checksum mismatch");
    return payload;
}

std::string serialize_model(const ReducedModel& m) {
    Writer w;
    w.kind(PayloadKind::model);
    w.model(m);
    return frame(w.bytes());
}

ReducedModel deserialize_model(const std::string& bytes) {
    std::uint32_t version = kFormatVersion;
    const std::string payload = unframe(bytes, &version);
    Reader r(payload, version);
    r.expect_kind(PayloadKind::model);
    ReducedModel m = r.model();
    if (!r.at_end()) fail(IoErrorKind::corrupt, "trailing bytes after the model payload");
    return m;
}

std::string serialize_family(const Family& f) {
    Writer w;
    w.kind(PayloadKind::family);
    w.u8(static_cast<std::uint8_t>(FamilyLayout::inline_members));
    w.family(f);
    return frame(w.bytes());
}

namespace {

Family deserialize_family_impl(const std::string& bytes, const std::string& block_dir) {
    std::uint32_t version = kFormatVersion;
    const std::string payload = unframe(bytes, &version);
    const VersionCaps caps = version_caps(version);
    if (!caps.family_payload)
        fail(IoErrorKind::corrupt,
             "format v" + std::to_string(version) + " artifacts cannot hold families");
    Reader r(payload, version);
    r.expect_kind(PayloadKind::family);
    if (caps.sectioned_family) {
        const std::uint8_t layout = r.u8();
        if (layout == static_cast<std::uint8_t>(FamilyLayout::sectioned))
            return detail::family_from_sectioned_payload(payload, block_dir);
        if (layout != static_cast<std::uint8_t>(FamilyLayout::inline_members))
            fail(IoErrorKind::corrupt,
                 "unknown family layout tag " + std::to_string(layout));
    }
    Family f = r.family();
    if (!r.at_end()) fail(IoErrorKind::corrupt, "trailing bytes after the family payload");
    return f;
}

}  // namespace

Family deserialize_family(const std::string& bytes) {
    return deserialize_family_impl(bytes, /*block_dir=*/"");
}

void write_file_atomically(const std::string& bytes, const std::string& path) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out) fail(IoErrorKind::open_failed, "cannot open " + tmp + " for writing");
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) fail(IoErrorKind::open_failed, "short write to " + tmp);
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::filesystem::remove(tmp, ec);
        fail(IoErrorKind::open_failed, "cannot publish " + path);
    }
}

void save_model(const ReducedModel& m, const std::string& path) {
    write_file_atomically(serialize_model(m), path);
}

ReducedModel load_model(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(IoErrorKind::open_failed, "cannot open " + path + " for reading");
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (in.bad()) fail(IoErrorKind::open_failed, "read error on " + path);
    return deserialize_model(bytes);
}

void save_family(const Family& f, const std::string& path) {
    write_file_atomically(serialize_family(f), path);
}

Family load_family(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) fail(IoErrorKind::open_failed, "cannot open " + path + " for reading");
    std::string bytes((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    if (in.bad()) fail(IoErrorKind::open_failed, "read error on " + path);
    // A sectioned artifact may reference shared blocks in the conventional
    // `blocks/` directory beside the file (the registry's dedup store).
    return deserialize_family_impl(
        bytes, (std::filesystem::path(path).parent_path() / "blocks").string());
}

}  // namespace atmor::rom
