// Versioned binary save/load for ReducedModel artifacts (and the underlying
// Qldae / Matrix / CSR / tensor blocks).
//
// File layout:  "ATMORROM" magic | u32 version | u64 payload size | payload |
// u64 FNV-1a checksum of the payload. Doubles are stored as their raw 8-byte
// representation, so a round-trip is BIT-EXACT: a loaded ROM simulates to
// exactly the trace of the in-memory one (pinned by test_rom_io). Every
// failure mode -- missing file, truncation, foreign magic, version skew,
// checksum mismatch, structurally invalid payload -- surfaces as a typed
// IoError instead of a garbage model.
//
// The byte layout assumes a little-endian host (every platform the library
// targets); artifacts are not interchangeable with big-endian machines.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "rom/family.hpp"
#include "rom/reduced_model.hpp"
#include "sparse/csr.hpp"
#include "sparse/tensor3.hpp"
#include "sparse/tensor4.hpp"
#include "util/error_codes.hpp"
#include "volterra/qldae.hpp"

namespace atmor::rom {

/// Bumped on any layout change. Writers always emit the current version;
/// readers accept [kMinSupportedVersion, kFormatVersion] and default the
/// fields a v1 artifact predates (no best-effort parsing of future or
/// ancient artifacts).
///   v1: base model layout.
///   v2: + accuracy provenance (per-point orders, tol, band, estimated
///       error) between basis_hash and build_seconds.
///   v3: payloads lead with a one-byte PayloadKind tag, making single
///       models, registry entries and the new Family containers
///       self-describing. v1/v2 artifacts (no tag) still load.
///   v4: family payloads follow the kind tag with a FamilyLayout byte:
///       `inline_members` keeps the exact v3 member layout, `sectioned` is
///       the compressed union-basis layout (rom/family_artifact.hpp) with
///       encoding tiers, per-member section offsets and a content-addressed
///       block table. Model/registry payloads are unchanged.
inline constexpr std::uint32_t kFormatVersion = 4;
inline constexpr std::uint32_t kMinSupportedVersion = 1;

/// What a given artifact version's payloads can hold -- the single source of
/// truth for version gating. Readers consult this table instead of spelling
/// `version >= N` comparisons per call site, so adding v5 is one row here
/// plus the new parsing branch, not an audit of scattered literals.
struct VersionCaps {
    bool accuracy_provenance = false;  ///< v2+: point orders / tol / band block
    bool payload_kind_tag = false;     ///< v3+: payloads lead with PayloadKind
    bool family_payload = false;       ///< v3+: Family containers exist
    bool sectioned_family = false;     ///< v4+: union-basis sectioned families
};

[[nodiscard]] constexpr VersionCaps version_caps(std::uint32_t version) {
    VersionCaps caps;
    caps.accuracy_provenance = version >= 2;
    caps.payload_kind_tag = version >= 3;
    caps.family_payload = version >= 3;
    caps.sectioned_family = version >= 4;
    return caps;
}

/// Conventional artifact extension (the registry's disk tier uses it).
inline constexpr const char* kArtifactExtension = ".atmor-rom";
/// Conventional extension for family containers.
inline constexpr const char* kFamilyExtension = ".atmor-fam";

/// What a v3 payload holds (first payload byte). Readers of a specific kind
/// reject the others as corrupt instead of mis-parsing them.
enum class PayloadKind : std::uint8_t {
    model = 0,           ///< bare ReducedModel (save_model / load_model)
    registry_entry = 1,  ///< full registry key + model (the disk tier)
    family = 2,          ///< parametric rom::Family container
};

/// Second payload byte of a v4 family artifact: how the members are stored.
enum class FamilyLayout : std::uint8_t {
    inline_members = 0,  ///< raw-double member models, exact v3 body
    sectioned = 1,       ///< union-basis blocks + member directory (v4)
};

enum class IoErrorKind {
    open_failed,        ///< file missing or unreadable/unwritable
    truncated,          ///< ran out of bytes mid-structure
    bad_magic,          ///< not an atmor ROM artifact at all
    version_mismatch,   ///< artifact written by a different format version
    checksum_mismatch,  ///< payload bytes damaged after writing
    corrupt,            ///< bytes intact but structurally invalid
};

const char* to_string(IoErrorKind kind);

/// The stable numeric code (util/error_codes.hpp) for an IoErrorKind, so a
/// wire ServeResponse reports artifact damage exactly like the in-process
/// exception does.
[[nodiscard]] constexpr util::ErrorCode error_code(IoErrorKind kind) {
    switch (kind) {
        case IoErrorKind::open_failed: return util::ErrorCode::io_open_failed;
        case IoErrorKind::truncated: return util::ErrorCode::io_truncated;
        case IoErrorKind::bad_magic: return util::ErrorCode::io_bad_magic;
        case IoErrorKind::version_mismatch: return util::ErrorCode::io_version_mismatch;
        case IoErrorKind::checksum_mismatch: return util::ErrorCode::io_checksum_mismatch;
        case IoErrorKind::corrupt: return util::ErrorCode::io_corrupt;
    }
    return util::ErrorCode::io_corrupt;
}

class IoError : public std::runtime_error {
public:
    IoError(IoErrorKind kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}
    [[nodiscard]] IoErrorKind kind() const { return kind_; }

private:
    IoErrorKind kind_;
};

/// Append-only payload builder. Composite writers nest: model() writes the
/// provenance, the Qldae blocks and the basis through the same primitives.
class Writer {
public:
    void u8(std::uint8_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i32(std::int32_t v);
    void f64(double v);
    void str(const std::string& s);
    void complex(la::Complex z);
    void matrix(const la::Matrix& m);
    void zmatrix(const la::ZMatrix& m);
    void vec(const la::Vec& v);
    void csr(const sparse::CsrMatrix& m);
    void tensor3(const sparse::SparseTensor3& t);
    void tensor4(const sparse::SparseTensor4& t);
    void qldae(const volterra::Qldae& sys);
    void model(const ReducedModel& m);
    void family(const Family& f);
    /// The shared sub-records family() / model() and the sectioned v4 layout
    /// (rom/family_artifact.cpp) compose from; byte layouts are identical to
    /// the inline spellings they replaced.
    void param_space(const pmor::ParamSpace& space);
    void coverage_cells(const std::vector<CoverageCell>& cells);
    void provenance(const Provenance& p);
    /// Payload-kind tag; top-level serializers write it first (v3+ layout).
    void kind(PayloadKind k) { u8(static_cast<std::uint8_t>(k)); }

    [[nodiscard]] const std::string& bytes() const { return buf_; }

private:
    void raw(const void* data, std::size_t n);

    std::string buf_;
};

/// Payload parser over a byte buffer (not owned). Reading past the end
/// throws IoError{truncated}; structurally invalid data (negative dims,
/// inconsistent CSR arrays, ...) throws IoError{corrupt}. The version
/// (from unframe) selects which layout model() parses; primitive readers
/// are version-independent.
class Reader {
public:
    explicit Reader(const std::string& bytes, std::uint32_t version = kFormatVersion)
        : buf_(bytes), version_(version) {}

    std::uint8_t u8();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int32_t i32();
    double f64();
    std::string str();
    la::Complex complex();
    la::Matrix matrix();
    la::ZMatrix zmatrix();
    la::Vec vec();
    sparse::CsrMatrix csr();
    sparse::SparseTensor3 tensor3();
    sparse::SparseTensor4 tensor4();
    volterra::Qldae qldae();
    ReducedModel model();
    Family family();
    /// Inverses of the Writer sub-records. coverage_cells validates the
    /// coordinate count against `ndims` and the member references against
    /// `member_count` exactly like family() always did.
    pmor::ParamSpace param_space();
    std::vector<CoverageCell> coverage_cells(std::size_t ndims, int member_count);
    Provenance provenance();
    /// Consume and check the payload-kind tag. No-op for pre-v3 payloads
    /// (which carry no tag); a tag mismatch throws IoError{corrupt} -- a v3
    /// family fed to a model loader must not mis-parse as a model.
    void expect_kind(PayloadKind k);

    [[nodiscard]] std::uint32_t version() const { return version_; }
    [[nodiscard]] bool at_end() const { return pos_ == buf_.size(); }

private:
    void raw(void* out, std::size_t n);
    /// Bounded count for upcoming element reads: must fit in the remaining
    /// bytes at `elem_size` each (rejects absurd counts before allocating).
    std::size_t count(std::uint64_t n, std::size_t elem_size);

    const std::string& buf_;
    std::size_t pos_ = 0;
    std::uint32_t version_ = kFormatVersion;
};

/// Frame a payload with magic/version/size/checksum (the inverse of
/// unframe). Exposed so callers can persist other payload types with the
/// same integrity envelope. The version overload exists for back-compat
/// tests and tools that must forge older artifacts.
std::string frame(const std::string& payload);
std::string frame(const std::string& payload, std::uint32_t version);
/// Verify magic/version/size/checksum and return the payload bytes. Accepts
/// any version in [kMinSupportedVersion, kFormatVersion] and reports which
/// one via `version_out` (pass it on to Reader); others throw
/// IoError{version_mismatch}.
std::string unframe(const std::string& bytes, std::uint32_t* version_out = nullptr);

/// Full artifact in memory: framed model payload.
std::string serialize_model(const ReducedModel& m);
ReducedModel deserialize_model(const std::string& bytes);

/// Framed family container. serialize_family emits the inline_members
/// layout (raw-double members, exact pre-v4 body); deserialize_family
/// accepts both v4 layouts -- a sectioned payload is decoded through
/// rom/family_artifact.cpp with every block materialized and hash-checked --
/// and rejects pre-v3 artifacts, which cannot hold families.
std::string serialize_family(const Family& f);
Family deserialize_family(const std::string& bytes);

/// Publish bytes at `path` via temp file + rename: a crashed writer or a
/// concurrent reader never observes a torn file at the final name (the
/// rename is atomic on POSIX). Throws IoError{open_failed} on I/O failure.
void write_file_atomically(const std::string& bytes, const std::string& path);

/// File round-trip (save_model publishes atomically; see above).
void save_model(const ReducedModel& m, const std::string& path);
ReducedModel load_model(const std::string& path);

/// Family file round-trip (atomic publication like save_model).
void save_family(const Family& f, const std::string& path);
Family load_family(const std::string& path);

}  // namespace atmor::rom
